"""Closure-compiling interpreter for mini-C.

Rather than walking the AST on every execution, each function body is
compiled once into a tree of Python closures; executing the program then
only runs closures.  Every closure charges its operation class into the
machine's counter tally, which the cost model converts to cycles, seconds
and Joules (see :mod:`repro.runtime.costs`).

The compiler is *typed*: it consults :class:`repro.minic.sema.Typer` at
compile time to choose integer vs float vs pointer operation variants, so
the hot path performs no type dispatch beyond what pointer values
inherently require.

Value model (see :mod:`repro.runtime.values`): ints wrap to 32 bits,
arrays are Python lists, pointers are bare lists (offset 0) or
``(list, offset)`` tuples, address-taken scalars are boxed in one-element
lists.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import InterpError
from ..minic import astnodes as ast
from ..minic.builtins import BUILTINS
from ..minic.sema import Typer
from ..minic.types import FLOAT, ArrayType, PointerType, decay
from . import fuse, intrinsics
from .costs import (
    ALU,
    BRANCH,
    CALL,
    CONST,
    DIV,
    FALU,
    FDIV,
    FMUL,
    GLOBAL_RD,
    GLOBAL_WR,
    LOCAL_RD,
    LOCAL_WR,
    MEM_RD,
    MEM_WR,
    MUL,
    RET,
)
from .machine import Machine
from .values import c_div, c_mod, c_shl, c_shr, deep_copy_value, wrap32, zero_value

# Control-flow sentinels returned by statement closures.
BREAK = object()
CONTINUE = object()


class Ret:
    """Wrapper signalling a return with a value through block closures."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value


ExprClosure = Callable[[list], object]
StmtClosure = Callable[[list], object]


class CompiledFunction:
    """A mini-C function compiled against a specific machine."""

    def __init__(self, fn: ast.Function, machine: Machine) -> None:
        self.name = fn.name
        self.ret_type = fn.ret_type
        self._machine = machine
        self._frame_size = fn.frame_size
        self._param_specs = [
            (p.symbol.slot, p.symbol.address_taken and p.symbol.type.is_scalar)
            for p in fn.params
        ]
        self._body: Optional[StmtClosure] = None
        self._ctr = machine.counters

    def bind_body(self, body: StmtClosure) -> None:
        # Cycle attribution hooks are a compile-time decision: with no
        # profiler installed the bound closure is exactly the plain body,
        # so profiling can never perturb an unprofiled run.
        profiler = self._machine.cycle_profiler
        if profiler is not None:
            inner = body

            def body(frame, inner=inner, profiler=profiler, name=self.name):
                profiler.enter_function(name)
                try:
                    return inner(frame)
                finally:
                    profiler.exit_function()

        # Same gating for the live metrics registry: the call counter is
        # compiled in only when a registry is installed, with its labeled
        # child resolved once per function.
        registry = self._machine.metrics_registry
        if registry is not None:
            calls = registry.counter(
                "repro_function_calls", "Function body invocations."
            ).labels(function=self.name)
            inner = body

            def body(frame, inner=inner, calls=calls):
                calls.inc()
                return inner(frame)

        self._body = body
        self._ctr = self._machine.counters

    def invoke(self, args: tuple):
        frame = [0] * self._frame_size
        for (slot, boxed), value in zip(self._param_specs, args):
            frame[slot] = [value] if boxed else value
        result = self._body(frame)
        self._ctr[RET] += 1
        if type(result) is Ret:
            return result.value
        return 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"<compiled fn {self.name}>"


class CompiledProgram:
    """A whole program compiled against a machine."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.functions: dict[str, CompiledFunction] = {}
        self._global_templates: list = []

    def reset_globals(self) -> None:
        self.machine.globals = [deep_copy_value(v) for v in self._global_templates]

    def run(self, entry: str = "main", args: tuple = ()):
        """Invoke ``entry`` with fresh globals and I/O, return its value.

        Counters are *not* reset so several runs can accumulate; use
        :meth:`repro.runtime.machine.Machine.reset_counters` explicitly.
        """
        self.reset_globals()
        self.machine.reset_io()
        fn = self.functions.get(entry)
        if fn is None:
            raise InterpError(f"no function named {entry!r}")
        return fn.invoke(tuple(args))


_RECURSION_LIMIT = 40_000  # each mini-C call costs ~15 Python frames
_recursion_limit_checked = False


def _ensure_recursion_limit() -> None:
    """Raise the interpreter recursion limit once, idempotently.

    Deep mini-C call chains need a large Python stack.  The limit is only
    ever *raised* (a user-configured higher limit is left alone), and the
    global is touched at most once per process so repeated compiles do not
    keep mutating interpreter state.
    """
    global _recursion_limit_checked
    if _recursion_limit_checked:
        return
    import sys

    if sys.getrecursionlimit() < _RECURSION_LIMIT:
        sys.setrecursionlimit(_RECURSION_LIMIT)
    _recursion_limit_checked = True


def compile_program(program: ast.Program, machine: Machine) -> CompiledProgram:
    """Compile a resolved mini-C program against ``machine``.

    When ``machine.fuse`` is true (the default), straight-line regions
    with compile-time-known operation classes are compiled to fused
    Python functions that charge their tally vector in one batch (see
    :mod:`repro.runtime.fuse`); accounting is bit-identical either way.

    ``machine.backend`` selects the execution strategy: ``"closures"``
    builds the closure tree defined in this module, ``"vm"`` compiles to
    the register bytecode (:mod:`repro.runtime.vm`).  Both expose the
    same program interface and produce bit-identical cycles, outputs,
    metrics, and ledger verdicts.
    """
    if getattr(machine, "backend", "closures") == "vm":
        from .vm import compile_vm_program

        return compile_vm_program(program, machine)
    _ensure_recursion_limit()
    if machine.source_map is not None:
        machine.source_map.backend = "closures"
    compiled = CompiledProgram(machine)
    # Phase 1: create shells so calls can reference any function.
    for fn in program.functions:
        compiled.functions[fn.name] = CompiledFunction(fn, machine)
    # Globals: evaluate initializers at compile time.
    templates = []
    for g in program.globals:
        templates.append(_global_template(g.decl))
    compiled._global_templates = templates
    compiled.reset_globals()
    # Phase 2: compile bodies.
    typer = Typer(program)
    for fn in program.functions:
        fc = _FunctionCompiler(fn, compiled, typer, machine)
        compiled.functions[fn.name].bind_body(fc.compile_body())
    return compiled


# ---------------------------------------------------------------------------
# Global initializers
# ---------------------------------------------------------------------------


def _const_value(expr: ast.Expr):
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.FloatLit):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        return -_const_value(expr.operand)
    if isinstance(expr, ast.Binary):
        lhs = _const_value(expr.lhs)
        rhs = _const_value(expr.rhs)
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: c_div(a, b) if isinstance(a, int) else a / b,
            "<<": c_shl,
            ">>": c_shr,
            "%": c_mod,
            "&": lambda a, b: a & b,
            "|": lambda a, b: a | b,
            "^": lambda a, b: a ^ b,
        }
        if expr.op in ops:
            return ops[expr.op](lhs, rhs)
    raise InterpError("global initializer must be a constant expression")


def _fill_array(t: ArrayType, init: list):
    """Build a nested list for an array initializer, zero-padding."""
    result = zero_value(t)
    for i, item in enumerate(init):
        if i >= t.length:
            raise InterpError("too many array initializer elements")
        if isinstance(item, list):
            if not isinstance(t.elem, ArrayType):
                raise InterpError("nested initializer for non-array element")
            result[i] = _fill_array(t.elem, item)
        else:
            value = _const_value(item)
            if isinstance(t.elem, ArrayType):
                raise InterpError("scalar initializer for array element")
            result[i] = float(value) if t.elem == FLOAT else int(value)
    return result


def _global_template(decl: ast.VarDecl):
    if decl.array_init is not None:
        if not isinstance(decl.type, ArrayType):
            raise InterpError(f"initializer list for non-array global {decl.name}")
        return _fill_array(decl.type, decl.array_init)
    if decl.init is not None:
        value = _const_value(decl.init)
        return float(value) if decl.type == FLOAT else value
    return zero_value(decl.type)


# ---------------------------------------------------------------------------
# Function compiler
# ---------------------------------------------------------------------------


class _FunctionCompiler:
    def __init__(
        self,
        fn: ast.Function,
        compiled: CompiledProgram,
        typer: Typer,
        machine: Machine,
    ) -> None:
        self.fn = fn
        self.compiled = compiled
        self.typer = typer
        self.machine = machine
        self.ctr = machine.counters
        # Line-attribution mode: the profiler tracks lines, so every
        # statement closure gets an ``at_line`` mark.  Statement fusion
        # would batch charges across statement boundaries — fused and
        # unfused metrics are bit-identical, so disabling fusion here
        # changes nothing the cost model can see, only the granularity
        # marks become observable at.
        self.lined = machine.cycle_profiler is not None and getattr(
            machine.cycle_profiler, "track_lines", False
        )
        self.fuse = machine.fuse and not self.lined
        source_map = machine.source_map
        self.srcmap = None if source_map is None else source_map.function(fn.name)
        self.cur_line = 0

    # -- statements ----------------------------------------------------------

    def compile_body(self) -> StmtClosure:
        return self.compile_stmt(self.fn.body)

    def record_site(self, seg: int, key: str) -> None:
        """Note a reuse site's source line in the debug side table."""
        if self.srcmap is not None:
            self.srcmap.sites.setdefault(seg, {})[key] = self.cur_line

    def _note_stmt(self, stmt: ast.Stmt) -> bool:
        """Track the current source line; record the statement unit in
        the debug side table.  Returns whether the statement is a
        line-markable unit (has a line, is not a block)."""
        if stmt.line <= 0 or isinstance(stmt, ast.Block):
            return False
        self.cur_line = stmt.line
        if self.srcmap is not None:
            self.srcmap.stmt_lines.append((stmt.line, type(stmt).__name__))
        return True

    def compile_stmt(self, stmt: ast.Stmt) -> StmtClosure:
        line = stmt.line
        tracked = self._note_stmt(stmt)
        if self.fuse and fuse.fusable_stmt(stmt, self):
            return fuse.fuse_region([stmt], self)
        run = self._compile_stmt_unfused(stmt)
        if self.lined and tracked:
            # Statement-start mark, mirroring the VM's PROF_LINE op: the
            # delta since the previous boundary belongs to the previous
            # line; everything after belongs to this one.
            prof = self.machine.cycle_profiler

            def run_line(fr, run=run, prof=prof, line=line):
                prof.at_line(line)
                return run(fr)

            return run_line
        return run

    def _compile_stmt_unfused(self, stmt: ast.Stmt) -> StmtClosure:
        if isinstance(stmt, ast.Block):
            return self._compile_block(stmt)
        if isinstance(stmt, ast.ExprStmt):
            expr = self.compile_expr(stmt.expr)

            def run_expr(fr, expr=expr):
                expr(fr)
                return None

            return run_expr
        if isinstance(stmt, ast.DeclStmt):
            return self._compile_decl(stmt)
        if isinstance(stmt, ast.If):
            return self._compile_if(stmt)
        if isinstance(stmt, ast.While):
            return self._compile_while(stmt)
        if isinstance(stmt, ast.DoWhile):
            return self._compile_do_while(stmt)
        if isinstance(stmt, ast.For):
            return self._compile_for(stmt)
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                ret0 = Ret(0)
                return lambda fr: ret0
            value = self.compile_expr(stmt.value)
            return lambda fr, value=value: Ret(value(fr))
        if isinstance(stmt, ast.Break):
            ctr = self.ctr

            def run_break(fr, ctr=ctr):
                ctr[BRANCH] += 1
                return BREAK

            return run_break
        if isinstance(stmt, ast.Continue):
            ctr = self.ctr

            def run_continue(fr, ctr=ctr):
                ctr[BRANCH] += 1
                return CONTINUE

            return run_continue
        raise InterpError(f"cannot compile statement {type(stmt).__name__}")

    def _compile_block(self, block: ast.Block) -> StmtClosure:
        if self.fuse:
            # Fuse maximal runs of consecutive fusable statements into
            # single batched-accounting functions; calls, escaping control
            # flow, and profiling stubs break runs and stay exact.
            stmts: list[StmtClosure] = []
            run: list[ast.Stmt] = []
            for s in block.stmts:
                self._note_stmt(s)
                if fuse.fusable_stmt(s, self):
                    run.append(s)
                else:
                    if run:
                        stmts.append(fuse.fuse_region(run, self))
                        run = []
                    stmts.append(self._compile_stmt_unfused(s))
            if run:
                stmts.append(fuse.fuse_region(run, self))
        else:
            stmts = [self.compile_stmt(s) for s in block.stmts]
        if not stmts:
            return lambda fr: None
        if len(stmts) == 1:
            return stmts[0]

        def run_block(fr, stmts=stmts):
            for s in stmts:
                r = s(fr)
                if r is not None:
                    return r
            return None

        return run_block

    def _compile_decl(self, stmt: ast.DeclStmt) -> StmtClosure:
        actions = []
        ctr = self.ctr
        for decl in stmt.decls:
            symbol = decl.symbol
            assert symbol is not None
            slot = symbol.slot
            boxed = symbol.address_taken and symbol.type.is_scalar
            if isinstance(symbol.type, ArrayType):
                if decl.array_init is not None:
                    template = _fill_array(symbol.type, decl.array_init)

                    def alloc_init(fr, slot=slot, template=template):
                        fr[slot] = deep_copy_value(template)

                    actions.append(alloc_init)
                else:
                    array_type = symbol.type

                    def alloc_zero(fr, slot=slot, t=array_type):
                        fr[slot] = zero_value(t)

                    actions.append(alloc_zero)
            elif decl.init is not None:
                value = self.compile_expr(decl.init)
                if boxed:

                    def store_boxed(fr, slot=slot, value=value, ctr=ctr):
                        ctr[LOCAL_WR] += 1
                        fr[slot] = [value(fr)]

                    actions.append(store_boxed)
                else:

                    def store_plain(fr, slot=slot, value=value, ctr=ctr):
                        ctr[LOCAL_WR] += 1
                        fr[slot] = value(fr)

                    actions.append(store_plain)
            else:
                init_value = zero_value(symbol.type)
                if boxed:

                    def zero_boxed(fr, slot=slot, v=init_value):
                        fr[slot] = [v]

                    actions.append(zero_boxed)
                else:

                    def zero_plain(fr, slot=slot, v=init_value):
                        fr[slot] = v

                    actions.append(zero_plain)

        def run_decl(fr, actions=actions):
            for a in actions:
                a(fr)
            return None

        return run_decl

    def _compile_if(self, stmt: ast.If) -> StmtClosure:
        ctr = self.ctr
        cond = self.compile_expr(stmt.cond)
        then = self.compile_stmt(stmt.then)
        if stmt.els is None:

            def run_if(fr, cond=cond, then=then, ctr=ctr):
                ctr[BRANCH] += 1
                if cond(fr):
                    return then(fr)
                return None

            return run_if
        els = self.compile_stmt(stmt.els)

        def run_if_else(fr, cond=cond, then=then, els=els, ctr=ctr):
            ctr[BRANCH] += 1
            if cond(fr):
                return then(fr)
            return els(fr)

        return run_if_else

    def _compile_while(self, stmt: ast.While) -> StmtClosure:
        ctr = self.ctr
        cond = self.compile_expr(stmt.cond)
        body = self.compile_stmt(stmt.body)
        if self.lined and stmt.line > 0:
            # Per-iteration mark before the BRANCH charge — the same
            # placement as the VM's PROF_LINE at the loop head, so both
            # backends tick at identical counter states.
            prof = self.machine.cycle_profiler
            line = stmt.line

            def run_while_lined(
                fr, cond=cond, body=body, ctr=ctr, prof=prof, line=line
            ):
                while True:
                    prof.at_line(line)
                    ctr[BRANCH] += 1
                    if not cond(fr):
                        return None
                    r = body(fr)
                    if r is not None:
                        if r is BREAK:
                            return None
                        if r is not CONTINUE:
                            return r

            return run_while_lined

        def run_while(fr, cond=cond, body=body, ctr=ctr):
            while True:
                ctr[BRANCH] += 1
                if not cond(fr):
                    return None
                r = body(fr)
                if r is not None:
                    if r is BREAK:
                        return None
                    if r is not CONTINUE:
                        return r

        return run_while

    def _compile_do_while(self, stmt: ast.DoWhile) -> StmtClosure:
        ctr = self.ctr
        cond = self.compile_expr(stmt.cond)
        body = self.compile_stmt(stmt.body)
        if self.lined and stmt.line > 0:
            # Mark at the tail before the BRANCH charge — matches the VM's
            # PROF_LINE at the do-while back-edge test.
            prof = self.machine.cycle_profiler
            line = stmt.line

            def run_do_lined(
                fr, cond=cond, body=body, ctr=ctr, prof=prof, line=line
            ):
                while True:
                    r = body(fr)
                    if r is not None:
                        if r is BREAK:
                            return None
                        if r is not CONTINUE:
                            return r
                    prof.at_line(line)
                    ctr[BRANCH] += 1
                    if not cond(fr):
                        return None

            return run_do_lined

        def run_do(fr, cond=cond, body=body, ctr=ctr):
            while True:
                r = body(fr)
                if r is not None:
                    if r is BREAK:
                        return None
                    if r is not CONTINUE:
                        return r
                ctr[BRANCH] += 1
                if not cond(fr):
                    return None

        return run_do

    def _compile_for(self, stmt: ast.For) -> StmtClosure:
        ctr = self.ctr
        init = self.compile_stmt(stmt.init) if stmt.init is not None else None
        cond = self.compile_expr(stmt.cond) if stmt.cond is not None else None
        step = self.compile_expr(stmt.step) if stmt.step is not None else None
        body = self.compile_stmt(stmt.body)
        if self.lined and stmt.line > 0:
            # Head mark each iteration (even condition-less) and a tail
            # mark before the step — both match the VM's PROF_LINE
            # placement at the for head/tail labels.
            prof = self.machine.cycle_profiler
            line = stmt.line

            def run_for_lined(
                fr,
                init=init,
                cond=cond,
                step=step,
                body=body,
                ctr=ctr,
                prof=prof,
                line=line,
            ):
                if init is not None:
                    init(fr)
                while True:
                    prof.at_line(line)
                    if cond is not None:
                        ctr[BRANCH] += 1
                        if not cond(fr):
                            return None
                    r = body(fr)
                    if r is not None:
                        if r is BREAK:
                            return None
                        if r is not CONTINUE:
                            return r
                    if step is not None:
                        prof.at_line(line)
                        step(fr)

            return run_for_lined

        def run_for(fr, init=init, cond=cond, step=step, body=body, ctr=ctr):
            if init is not None:
                init(fr)
            while True:
                if cond is not None:
                    ctr[BRANCH] += 1
                    if not cond(fr):
                        return None
                r = body(fr)
                if r is not None:
                    if r is BREAK:
                        return None
                    if r is not CONTINUE:
                        return r
                if step is not None:
                    step(fr)

        return run_for

    # -- expressions -----------------------------------------------------------

    def compile_expr(self, expr: ast.Expr) -> ExprClosure:
        if (
            self.fuse
            and fuse.expr_fuse_size(expr) >= fuse.EXPR_FUSE_THRESHOLD
            and fuse.fusable_expr(expr, self)
        ):
            return fuse.fuse_expr(expr, self)
        return self._compile_expr_unfused(expr)

    def _compile_expr_unfused(self, expr: ast.Expr) -> ExprClosure:
        ctr = self.ctr
        if isinstance(expr, ast.IntLit):
            value = wrap32(expr.value)

            def run_int(fr, value=value, ctr=ctr):
                ctr[CONST] += 1
                return value

            return run_int
        if isinstance(expr, ast.FloatLit):
            value = expr.value

            def run_float(fr, value=value, ctr=ctr):
                ctr[CONST] += 1
                return value

            return run_float
        if isinstance(expr, ast.Name):
            return self._compile_name_load(expr)
        if isinstance(expr, ast.Index):
            return self._compile_index_load(expr)
        if isinstance(expr, ast.Unary):
            return self._compile_unary(expr)
        if isinstance(expr, ast.IncDec):
            return self._compile_incdec(expr)
        if isinstance(expr, ast.Binary):
            return self._compile_binary(expr)
        if isinstance(expr, ast.Logical):
            return self._compile_logical(expr)
        if isinstance(expr, ast.Assign):
            return self._compile_assign(expr)
        if isinstance(expr, ast.Ternary):
            return self._compile_ternary(expr)
        if isinstance(expr, ast.Call):
            return self._compile_call(expr)
        raise InterpError(f"cannot compile expression {type(expr).__name__}")

    # -- names ----------------------------------------------------------------

    def _compile_name_load(self, expr: ast.Name) -> ExprClosure:
        ctr = self.ctr
        symbol = expr.symbol
        if symbol is None:
            raise InterpError(f"unresolved name {expr.name!r} reached the compiler")
        if symbol.kind == "func":
            fn = self.compiled.functions.get(symbol.name)
            if fn is None:
                raise InterpError(f"function {symbol.name!r} has no body")
            return lambda fr, fn=fn: fn
        slot = symbol.slot
        if symbol.kind == "global":
            machine = self.machine
            if isinstance(symbol.type, ArrayType):

                def g_arr(fr, g=machine, slot=slot, ctr=ctr):
                    ctr[CONST] += 1
                    return g.globals[slot]

                return g_arr

            def g_scalar(fr, g=machine, slot=slot, ctr=ctr):
                ctr[GLOBAL_RD] += 1
                return g.globals[slot]

            return g_scalar
        # local or param
        if symbol.address_taken and symbol.type.is_scalar:

            def l_boxed(fr, slot=slot, ctr=ctr):
                ctr[LOCAL_RD] += 1
                return fr[slot][0]

            return l_boxed
        if isinstance(symbol.type, ArrayType):

            def l_arr(fr, slot=slot, ctr=ctr):
                ctr[CONST] += 1
                return fr[slot]

            return l_arr

        def l_scalar(fr, slot=slot, ctr=ctr):
            ctr[LOCAL_RD] += 1
            return fr[slot]

        return l_scalar

    def _compile_name_store(self, expr: ast.Name) -> Callable[[list, object], None]:
        ctr = self.ctr
        symbol = expr.symbol
        assert symbol is not None
        slot = symbol.slot
        if symbol.kind == "global":
            machine = self.machine

            def g_store(fr, v, g=machine, slot=slot, ctr=ctr):
                ctr[GLOBAL_WR] += 1
                g.globals[slot] = v

            return g_store
        if symbol.kind == "func":
            raise InterpError("cannot assign to a function")
        if symbol.address_taken and symbol.type.is_scalar:

            def l_boxed_store(fr, v, slot=slot, ctr=ctr):
                ctr[LOCAL_WR] += 1
                fr[slot][0] = v

            return l_boxed_store

        def l_store(fr, v, slot=slot, ctr=ctr):
            ctr[LOCAL_WR] += 1
            fr[slot] = v

        return l_store

    # -- indexing / pointers -----------------------------------------------------

    def _compile_index_load(self, expr: ast.Index) -> ExprClosure:
        ctr = self.ctr
        base = self.compile_expr(expr.base)
        index = self.compile_expr(expr.index)
        base_type = decay(self.typer.type_of(expr.base))
        elem_is_array = isinstance(base_type, PointerType) and isinstance(
            base_type.elem, ArrayType
        )
        cls = ALU if elem_is_array else MEM_RD

        def run_index(fr, base=base, index=index, ctr=ctr, cls=cls):
            ctr[cls] += 1
            b = base(fr)
            i = index(fr)
            if type(b) is tuple:
                return b[0][b[1] + i]
            return b[i]

        return run_index

    def _compile_index_store(self, expr: ast.Index) -> Callable[[list, object], None]:
        ctr = self.ctr
        base = self.compile_expr(expr.base)
        index = self.compile_expr(expr.index)

        def run_store(fr, v, base=base, index=index, ctr=ctr):
            ctr[MEM_WR] += 1
            b = base(fr)
            i = index(fr)
            if type(b) is tuple:
                b[0][b[1] + i] = v
            else:
                b[i] = v

        return run_store

    def _compile_addr_of(self, expr: ast.Expr) -> ExprClosure:
        """Compile ``&expr`` — yields a pointer value."""
        ctr = self.ctr
        if isinstance(expr, ast.Name):
            symbol = expr.symbol
            assert symbol is not None
            if isinstance(symbol.type, ArrayType) or symbol.type.is_pointer:
                return self.compile_expr(expr)  # decays / copies the pointer
            if not symbol.address_taken:
                raise InterpError(f"&{symbol.name}: scalar was not marked address-taken")
            slot = symbol.slot
            if symbol.kind == "global":
                raise InterpError("address-of scalar globals is not supported; use an array")

            def addr_local(fr, slot=slot, ctr=ctr):
                ctr[ALU] += 1
                return fr[slot]  # the box list is the pointer

            return addr_local
        if isinstance(expr, ast.Index):
            base = self.compile_expr(expr.base)
            index = self.compile_expr(expr.index)

            def addr_index(fr, base=base, index=index, ctr=ctr):
                ctr[ALU] += 1
                b = base(fr)
                i = index(fr)
                if type(b) is tuple:
                    return (b[0], b[1] + i)
                return (b, i)

            return addr_index
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return self.compile_expr(expr.operand)
        raise InterpError("cannot take the address of this expression")

    # -- unary -------------------------------------------------------------------

    def _compile_unary(self, expr: ast.Unary) -> ExprClosure:
        ctr = self.ctr
        if expr.op == "&":
            return self._compile_addr_of(expr.operand)
        if expr.op == "*":
            operand = self.compile_expr(expr.operand)

            def run_deref(fr, operand=operand, ctr=ctr):
                ctr[MEM_RD] += 1
                v = operand(fr)
                if type(v) is tuple:
                    return v[0][v[1]]
                return v[0]

            return run_deref
        operand = self.compile_expr(expr.operand)
        operand_type = decay(self.typer.type_of(expr.operand))
        if expr.op == "-":
            if operand_type == FLOAT:

                def run_fneg(fr, operand=operand, ctr=ctr):
                    ctr[FALU] += 1
                    return -operand(fr)

                return run_fneg

            def run_neg(fr, operand=operand, ctr=ctr):
                ctr[ALU] += 1
                return wrap32(-operand(fr))

            return run_neg
        if expr.op == "!":

            def run_not(fr, operand=operand, ctr=ctr):
                ctr[ALU] += 1
                return 0 if operand(fr) else 1

            return run_not
        if expr.op == "~":

            def run_bnot(fr, operand=operand, ctr=ctr):
                ctr[ALU] += 1
                return ~operand(fr)

            return run_bnot
        raise InterpError(f"unknown unary operator {expr.op!r}")

    def _compile_incdec(self, expr: ast.IncDec) -> ExprClosure:
        ctr = self.ctr
        load = self.compile_expr(expr.target)
        store = self._compile_store(expr.target)
        target_type = decay(self.typer.type_of(expr.target))
        delta = 1 if expr.op == "++" else -1
        if isinstance(target_type, PointerType):

            def bump_ptr(v, delta=delta):
                if type(v) is tuple:
                    return (v[0], v[1] + delta)
                return (v, delta)

            bump = bump_ptr
        elif target_type == FLOAT:
            bump = lambda v, delta=delta: v + delta
        else:
            bump = lambda v, delta=delta: wrap32(v + delta)
        if expr.prefix:

            def run_pre(fr, load=load, store=store, bump=bump, ctr=ctr):
                ctr[ALU] += 1
                v = bump(load(fr))
                store(fr, v)
                return v

            return run_pre

        def run_post(fr, load=load, store=store, bump=bump, ctr=ctr):
            ctr[ALU] += 1
            v = load(fr)
            store(fr, bump(v))
            return v

        return run_post

    def _compile_store(self, expr: ast.Expr) -> Callable[[list, object], None]:
        if isinstance(expr, ast.Name):
            return self._compile_name_store(expr)
        if isinstance(expr, ast.Index):
            return self._compile_index_store(expr)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            ctr = self.ctr
            operand = self.compile_expr(expr.operand)

            def run_store(fr, v, operand=operand, ctr=ctr):
                ctr[MEM_WR] += 1
                p = operand(fr)
                if type(p) is tuple:
                    p[0][p[1]] = v
                else:
                    p[0] = v

            return run_store
        raise InterpError("invalid assignment target")

    # -- binary ---------------------------------------------------------------------

    def _compile_binary(self, expr: ast.Binary) -> ExprClosure:
        ctr = self.ctr
        if expr.op == ",":
            lhs = self.compile_expr(expr.lhs)
            rhs = self.compile_expr(expr.rhs)

            def run_comma(fr, lhs=lhs, rhs=rhs):
                lhs(fr)
                return rhs(fr)

            return run_comma
        lhs_type = decay(self.typer.type_of(expr.lhs))
        rhs_type = decay(self.typer.type_of(expr.rhs))
        lhs = self.compile_expr(expr.lhs)
        rhs = self.compile_expr(expr.rhs)
        op = expr.op
        # Pointer arithmetic -------------------------------------------------
        if isinstance(lhs_type, PointerType) and op in ("+", "-"):
            if isinstance(rhs_type, PointerType):

                def run_pdiff(fr, lhs=lhs, rhs=rhs, ctr=ctr):
                    ctr[ALU] += 1
                    a = lhs(fr)
                    b = rhs(fr)
                    ao = a[1] if type(a) is tuple else 0
                    bo = b[1] if type(b) is tuple else 0
                    return ao - bo

                return run_pdiff
            sign = 1 if op == "+" else -1

            def run_padd(fr, lhs=lhs, rhs=rhs, sign=sign, ctr=ctr):
                ctr[ALU] += 1
                p = lhs(fr)
                i = rhs(fr) * sign
                if type(p) is tuple:
                    return (p[0], p[1] + i)
                return (p, i)

            return run_padd
        if isinstance(rhs_type, PointerType) and op == "+":

            def run_padd2(fr, lhs=lhs, rhs=rhs, ctr=ctr):
                ctr[ALU] += 1
                i = lhs(fr)
                p = rhs(fr)
                if type(p) is tuple:
                    return (p[0], p[1] + i)
                return (p, i)

            return run_padd2
        # Comparisons ----------------------------------------------------------
        if op in ("==", "!=", "<", "<=", ">", ">="):
            cls = FALU if FLOAT in (lhs_type, rhs_type) else ALU
            table = {
                "==": lambda a, b: 1 if a == b else 0,
                "!=": lambda a, b: 1 if a != b else 0,
                "<": lambda a, b: 1 if a < b else 0,
                "<=": lambda a, b: 1 if a <= b else 0,
                ">": lambda a, b: 1 if a > b else 0,
                ">=": lambda a, b: 1 if a >= b else 0,
            }
            fn = table[op]

            def run_cmp(fr, lhs=lhs, rhs=rhs, fn=fn, ctr=ctr, cls=cls):
                ctr[cls] += 1
                return fn(lhs(fr), rhs(fr))

            return run_cmp
        # Arithmetic -------------------------------------------------------------
        is_float = FLOAT in (lhs_type, rhs_type)
        if is_float:
            table = {
                "+": (FALU, lambda a, b: a + b),
                "-": (FALU, lambda a, b: a - b),
                "*": (FMUL, lambda a, b: a * b),
                "/": (FDIV, _float_div),
            }
            if op not in table:
                raise InterpError(f"operator {op!r} requires integer operands")
            cls, fn = table[op]
        else:
            table = {
                "+": (ALU, lambda a, b: wrap32(a + b)),
                "-": (ALU, lambda a, b: wrap32(a - b)),
                "*": (MUL, lambda a, b: wrap32(a * b)),
                "/": (DIV, c_div),
                "%": (DIV, c_mod),
                "<<": (ALU, c_shl),
                ">>": (ALU, c_shr),
                "&": (ALU, lambda a, b: a & b),
                "|": (ALU, lambda a, b: a | b),
                "^": (ALU, lambda a, b: a ^ b),
            }
            cls, fn = table[op]

        def run_bin(fr, lhs=lhs, rhs=rhs, fn=fn, ctr=ctr, cls=cls):
            ctr[cls] += 1
            return fn(lhs(fr), rhs(fr))

        return run_bin

    def _compile_logical(self, expr: ast.Logical) -> ExprClosure:
        ctr = self.ctr
        lhs = self.compile_expr(expr.lhs)
        rhs = self.compile_expr(expr.rhs)
        if expr.op == "&&":

            def run_and(fr, lhs=lhs, rhs=rhs, ctr=ctr):
                ctr[BRANCH] += 1
                return 1 if (lhs(fr) and rhs(fr)) else 0

            return run_and

        def run_or(fr, lhs=lhs, rhs=rhs, ctr=ctr):
            ctr[BRANCH] += 1
            return 1 if (lhs(fr) or rhs(fr)) else 0

        return run_or

    def _compile_assign(self, expr: ast.Assign) -> ExprClosure:
        store = self._compile_store(expr.target)
        if expr.op == "=":
            value = self.compile_expr(expr.value)

            def run_assign(fr, value=value, store=store):
                v = value(fr)
                store(fr, v)
                return v

            return run_assign
        # Compound assignment desugars to load-op-store.
        binop = ast.Binary(
            op=expr.op[:-1], lhs=expr.target, rhs=expr.value, line=expr.line
        )
        combined = self._compile_binary(binop)

        def run_compound(fr, combined=combined, store=store):
            v = combined(fr)
            store(fr, v)
            return v

        return run_compound

    def _compile_ternary(self, expr: ast.Ternary) -> ExprClosure:
        ctr = self.ctr
        cond = self.compile_expr(expr.cond)
        then = self.compile_expr(expr.then)
        els = self.compile_expr(expr.els)

        def run_ternary(fr, cond=cond, then=then, els=els, ctr=ctr):
            ctr[BRANCH] += 1
            if cond(fr):
                return then(fr)
            return els(fr)

        return run_ternary

    # -- calls -------------------------------------------------------------------------

    def _compile_call(self, expr: ast.Call) -> ExprClosure:
        ctr = self.ctr
        if isinstance(expr.func, ast.Name) and expr.func.symbol is None:
            name = expr.func.name
            if name not in BUILTINS:
                raise InterpError(f"call to unknown builtin {name!r}")
            return intrinsics.compile_builtin(name, expr.args, self)
        args = [self.compile_expr(a) for a in expr.args]
        if isinstance(expr.func, ast.Name) and expr.func.symbol.kind == "func":
            fn = self.compiled.functions.get(expr.func.name)
            if fn is None:
                raise InterpError(f"function {expr.func.name!r} has no body")

            # Specialize the common arities: building the argument tuple
            # through a generator expression dominates call-heavy
            # workloads, and calls are the hot unfused construct.
            if len(args) == 0:

                def run_call0(fr, fn=fn, ctr=ctr):
                    ctr[CALL] += 1
                    return fn.invoke(())

                return run_call0
            if len(args) == 1:
                a0 = args[0]

                def run_call1(fr, fn=fn, a0=a0, ctr=ctr):
                    ctr[CALL] += 1
                    return fn.invoke((a0(fr),))

                return run_call1
            if len(args) == 2:
                a0, a1 = args

                def run_call2(fr, fn=fn, a0=a0, a1=a1, ctr=ctr):
                    ctr[CALL] += 1
                    return fn.invoke((a0(fr), a1(fr)))

                return run_call2
            if len(args) == 3:
                a0, a1, a2 = args

                def run_call3(fr, fn=fn, a0=a0, a1=a1, a2=a2, ctr=ctr):
                    ctr[CALL] += 1
                    return fn.invoke((a0(fr), a1(fr), a2(fr)))

                return run_call3

            def run_call(fr, fn=fn, args=args, ctr=ctr):
                ctr[CALL] += 1
                return fn.invoke(tuple(a(fr) for a in args))

            return run_call
        func = self.compile_expr(expr.func)

        def run_indirect(fr, func=func, args=args, ctr=ctr):
            ctr[CALL] += 1
            target = func(fr)
            if not isinstance(target, CompiledFunction):
                raise InterpError("indirect call target is not a function")
            return target.invoke(tuple(a(fr) for a in args))

        return run_indirect


def _float_div(a: float, b: float) -> float:
    if b == 0:
        raise InterpError("float division by zero")
    return a / b
