"""Bob Jenkins' one-at-a-time hash.

The paper (section 3.1) hashes keys wider than 32 bits down to a 32-bit
key with "a hash function [11]" — reference [11] is Jenkins' Dr. Dobb's
article.  We implement the classic one-at-a-time variant over the bytes
of the key words.
"""

from __future__ import annotations

from typing import Iterable

_U32 = 0xFFFFFFFF


def jenkins_one_at_a_time(data: Iterable[int]) -> int:
    """Hash a byte iterable to an unsigned 32-bit value."""
    h = 0
    for byte in data:
        h = (h + (byte & 0xFF)) & _U32
        h = (h + ((h << 10) & _U32)) & _U32
        h ^= h >> 6
    h = (h + ((h << 3) & _U32)) & _U32
    h ^= h >> 11
    h = (h + ((h << 15) & _U32)) & _U32
    return h


def _word_bytes(words: tuple) -> Iterable[int]:
    for word in words:
        w = word & _U32
        yield w & 0xFF
        yield (w >> 8) & 0xFF
        yield (w >> 16) & 0xFF
        yield (w >> 24) & 0xFF


def hash_key_words(words: tuple) -> int:
    """Hash a tuple of 32-bit key words to an unsigned 32-bit value.

    A single-word key is used directly (the paper's simple case: "the
    hash key is simply the value of the input"); wider keys go through
    Jenkins' function.
    """
    if len(words) == 1:
        return words[0] & _U32
    return jenkins_one_at_a_time(_word_bytes(words))
