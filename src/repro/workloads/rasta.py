"""RASTA workload: the FR4TR-like critical-band filter routine.

One integer input (the band index), six float outputs (filter
coefficients), heavy trigonometric work inside — the paper's "most
time-consuming function FR4TR contains a code segment with one input
variable and six output variables", with a 99.6% input repetition rate
over only 31 distinct patterns (the paper's Figure 11 histogram).
"""

from __future__ import annotations

from .base import PaperNumbers, Workload
from .inputs import rasta_bands, rasta_bands_alternate

_SOURCE = """
float out1;
float out2;
float out3;
float out4;
float out5;
float out6;

static void fr4tr(int band)
{
    float f = 0.0613592 * (band + 1);
    float c = __cos(f);
    float s = __sin(f);
    float e = 1.0;
    float w = 0.0;
    int k;
    for (k = 0; k < 12; k++) {
        e = e * c - 0.0625 * s;
        w = w + e * e;
    }
    out1 = e;
    out2 = w;
    out3 = __sqrt(w + 1.0);
    out4 = c * c - s * s;
    out5 = 2.0 * s * c;
    out6 = (e + w) / (c + 1.5);
}

int main(void)
{
    float acc = 0.0;
    float state = 0.0;
    int n = 0;
    while (__input_avail()) {
        int band = __input_int();
        fr4tr(band);
        /* the rest of the RASTA pipeline (band-pass filtering over the
           rolling spectral state) — accumulative, hence not reusable */
        int j;
        for (j = 0; j < 55; j++) {
            state = state * 0.93 + (out1 + out5) * 0.07 + j * 0.001;
            if (state > 100000000.0)
                break;  /* overflow guard; also keeps this loop out of
                           the reuse candidates (escaping break) */
        }
        acc = acc + state + out2 * 0.5 + out3 - out4 + out6;
        n++;
        if ((n & 255) == 0)
            __output_float(acc);
    }
    __output_float(acc);
    return n;
}
"""

RASTA = Workload(
    name="RASTA",
    source=_SOURCE,
    default_inputs=lambda: rasta_bands(),
    alternate_inputs=lambda: rasta_bands_alternate(),
    alternate_label="ICSI(rasta_testsuite_1998)",
    key_function="fr4tr",
    description="RASTA-PLP front end; FR4TR filter routine with 1 input / 6 outputs",
    paper=PaperNumbers(
        granularity_us=333.7,
        overhead_us=59.5,
        distinct_inputs=31,
        reuse_rate=0.996,
        table_bytes=2 * 1024,
        speedup_o0=1.17,
        speedup_o3=1.18,
        energy_saving_o0=0.143,
        energy_saving_o3=0.152,
        speedup_alternate=1.18,
        lru_hits=(0.026, 0.179, 0.588, 0.996),
        analyzed_cs=27,
        profiled_cs=3,
        transformed_cs=1,
    ),
)
