"""Registry of all benchmark workloads."""

from __future__ import annotations

from .base import Workload
from .drift import GNUGO_DRIFT, MPEG2_ENCODE_DRIFT, UNEPIC_DRIFT
from .g721 import (
    G721_DECODE,
    G721_DECODE_B,
    G721_DECODE_S,
    G721_ENCODE,
    G721_ENCODE_B,
    G721_ENCODE_S,
)
from .gnugo import GNUGO
from .mpeg2 import MPEG2_DECODE, MPEG2_ENCODE
from .rasta import RASTA
from .unepic import UNEPIC

# Order follows the paper's tables.
ALL_WORKLOADS: list[Workload] = [
    G721_ENCODE,
    G721_ENCODE_S,
    G721_ENCODE_B,
    G721_DECODE,
    G721_DECODE_S,
    G721_DECODE_B,
    MPEG2_ENCODE,
    MPEG2_DECODE,
    RASTA,
    UNEPIC,
    GNUGO,
    # distribution-shift variants for the online reuse governor
    MPEG2_ENCODE_DRIFT,
    UNEPIC_DRIFT,
    GNUGO_DRIFT,
]

# The seven primary programs (variants excluded), as in Tables 3/4/5/8/9/10.
PRIMARY_WORKLOADS: list[Workload] = [w for w in ALL_WORKLOADS if not w.is_variant]

WORKLOADS: dict[str, Workload] = {w.name: w for w in ALL_WORKLOADS}


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
