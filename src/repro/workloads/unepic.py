"""UNEPIC workload: image decompression (pyramid collapse).

The kernel dequantizes and filters one wavelet coefficient at a time —
single integer input, single integer output, moderate granularity, and a
65% repetition rate whose repeats are *spread across the whole image*
(hence Table 5's near-zero small-buffer hit ratios but the largest
whole-program speedup, 2.3x, once a full-size table holds them all).

The paper applies the scheme to the loop inside ``main``; our candidate
is the ``collapse_pyr`` step function that loop calls (the paper lists
``main, collapse_pyr`` as the relevant UNEPIC functions).
"""

from __future__ import annotations

from .base import PaperNumbers, Workload
from .inputs import unepic_coeffs, unepic_coeffs_alternate

_SOURCE = """
static int collapse_pyr(int v)
{
    int mag = (v > 0) ? v : -v;
    int r = 0;
    int k;
    /* inverse quantization + reconstruction filter taps */
    for (k = 0; k < 20; k++) {
        r += ((mag + k) * (mag + 13)) >> (k & 7);
        r += (mag * 21) / (k + 1);
    }
    r = r & 65535;
    return (v < 0) ? -r : r;
}

int main(void)
{
    int checksum = 0;
    int n = 0;
    int smooth = 0;
    while (__input_avail()) {
        int v = __input_int();
        int r = collapse_pyr(v);
        smooth = (smooth * 7 + r) >> 3;
        checksum += r + (smooth & 255);
        n++;
        if ((n & 511) == 0)
            __output_int(checksum & 65535);
    }
    __output_int(checksum);
    return checksum;
}
"""

UNEPIC = Workload(
    name="UNEPIC",
    source=_SOURCE,
    default_inputs=lambda: unepic_coeffs(),
    alternate_inputs=lambda: unepic_coeffs_alternate(),
    alternate_label="EPIC web-site(baboon.tif)",
    key_function="collapse_pyr",
    description="EPIC image decompression; per-coefficient dequantization step",
    paper=PaperNumbers(
        granularity_us=29.45,
        overhead_us=0.61,
        distinct_inputs=22902,
        reuse_rate=0.651,
        table_bytes=512 * 1024,
        speedup_o0=2.30,
        speedup_o3=2.28,
        energy_saving_o0=0.558,
        energy_saving_o3=0.551,
        speedup_alternate=4.25,
        lru_hits=(0.011, 0.011, 0.012, 0.014),
        analyzed_cs=69,
        profiled_cs=1,
        transformed_cs=1,
    ),
)
