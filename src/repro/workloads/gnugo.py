"""GNU Go workload: accumulate_influence with eight mergeable segments.

``accumulate_influence`` contains eight code chunks (one per direction of
influence propagation), each reading the *same four* small integers
(point classes in [0, 19]) and writing its own output — the paper's
flagship case for merged hash tables (section 2.5): eight separate
tables exhaust the iPAQ's memory, the single merged table (shared key +
bit vector + eight output slots) fits and yields the 1.2-1.3x speedup.

The surrounding function also consults the evolving board array, so the
*function-body* segment keys on the whole board and profiles a reuse rate
near zero — the nesting analysis therefore (correctly) prefers the eight
inner IF-branch segments, matching the paper's "Transformed CS = 8".
"""

from __future__ import annotations

from .base import PaperNumbers, Workload
from .inputs import gnugo_points, gnugo_points_alternate


def _branch(index: int, cond: str, mix: str) -> str:
    return f"""
    if ({cond}) {{
        int r{index} = 0;
        int k{index};
        for (k{index} = 0; k{index} < 6; k{index}++)
            r{index} += ({mix} + k{index} * k{index}) >> (k{index} & 3);
        infl{index} = r{index};
    }}"""


_BRANCHES = "".join(
    _branch(i, cond, mix)
    for i, (cond, mix) in enumerate(
        [
            ("p + d < 36", "p * 3 + q * 5 + s * 7 + d * 11"),
            ("q + s > 1", "p * 5 + q * 3 + s * 11 + d * 7"),
            ("p > 0", "p * 7 + q * 11 + s * 3 + d * 5"),
            ("q < 19", "p * 11 + q * 7 + s * 5 + d * 3"),
            ("s + d < 38", "p * 2 + q * 9 + s * 4 + d * 13"),
            ("p + q > 0", "p * 9 + q * 2 + s * 13 + d * 4"),
            ("d < 19", "p * 4 + q * 13 + s * 2 + d * 9"),
            # b0 (a masked board read) appears only in this *condition*, so
            # the board stays out of every branch's input set while still
            # reaching the function segment's key
            ("s + b0 < 20", "p * 13 + q * 4 + s * 9 + d * 2"),
        ]
    )
)

_SOURCE = f"""
int board[64];
int infl0;
int infl1;
int infl2;
int infl3;
int infl4;
int infl5;
int infl6;
int infl7;

static void accumulate_influence(int p, int q, int s, int d)
{{
    /* the board consultation makes the whole-function key unprofitably
       wide and volatile; only the eight chunks below are reusable */
    int b0 = board[(p + q * 3) & 63] & 0;
{_BRANCHES}
}}

int main(void)
{{
    int acc = 0;
    int move = 0;
    while (__input_avail()) {{
        int p = __input_int();
        int q = __input_int();
        int s = __input_int();
        int d = __input_int();
        board[(p * 7 + q * 11 + move) & 63] = move * 31 + s;
        accumulate_influence(p, q, s, d);
        /* pattern matching and move evaluation around the influence core
           (depends on the move counter, so it never repeats) */
        int w;
        int patt = 0;
        for (w = 0; w < 96; w++) {{
            patt += ((p + w) * (q + 1) + move * 3 + (s ^ w)) / (w % 7 + 1);
            if (patt > 1000000000)
                break;  /* guard; keeps the scan out of the candidates */
        }}
        acc += patt & 15;
        acc += infl0 + infl1 + infl2 + infl3 + infl4 + infl5 + infl6 + infl7;
        move++;
    }}
    __output_int(acc);
    return acc;
}}
"""

GNUGO = Workload(
    name="GNUGO",
    source=_SOURCE,
    default_inputs=lambda: gnugo_points(),
    alternate_inputs=lambda: gnugo_points_alternate(),
    alternate_label='"-b 9 -r 2"',
    key_function="accumulate_influence",
    description="GNU Go influence accumulation; eight segments with identical 4-int inputs",
    paper=PaperNumbers(
        granularity_us=26.3,
        overhead_us=2.14,
        distinct_inputs=46283,
        reuse_rate=0.982,
        table_bytes=int(4.47 * 1024 * 1024),
        speedup_o0=1.31,
        speedup_o3=1.20,
        energy_saving_o0=0.232,
        energy_saving_o3=0.167,
        speedup_alternate=1.20,
        lru_hits=(0.0, 0.0001, 0.0006, 0.003),
        analyzed_cs=106,
        profiled_cs=16,
        transformed_cs=8,
    ),
    memory_budget_bytes=256 * 1024,
)
