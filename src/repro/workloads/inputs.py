"""Synthetic input generators for the benchmark workloads.

The paper drives its programs with Mediabench default files (pcm audio,
m2v video, wav speech, compressed images) plus a second set of
"different" inputs (Table 10).  We cannot ship those media files, so each
generator synthesizes a stream with the *properties the experiments
depend on*:

* the distinct-input-pattern count and reuse rate seen by the memoized
  segment (Table 3);
* the temporal reuse-distance structure, which determines the small-LRU
  hit ratios of Table 5 (e.g. MPEG2_decode hits 33% even with a 1-entry
  buffer because flat image regions produce *runs* of identical blocks,
  while UNEPIC's repeats are spread across the whole image);
* rough stream lengths, scaled ~20-100x down from Mediabench so the
  interpreted runs stay in seconds.

All generators are deterministic given their seed.  ``default`` streams
are what profiling *and* measurement use (as in the paper); ``alternate``
streams regenerate Table 10.
"""

from __future__ import annotations

import math
import random

# ---------------------------------------------------------------------------
# G721: speech-like PCM and ADPCM-like code streams
# ---------------------------------------------------------------------------


def g721_audio(seed: int = 11, n: int = 3000) -> list[int]:
    """Speech-like 16-bit samples: a few sinusoids with a slowly-moving
    amplitude envelope plus Laplacian noise.  The encoder's difference
    signal then concentrates at small magnitudes (the paper's Figure 5
    histogram shape), giving quan a high reuse rate."""
    rng = random.Random(seed)
    samples = []
    phase1 = rng.random() * math.tau
    phase2 = rng.random() * math.tau
    for i in range(n):
        envelope = 0.4 + 0.35 * math.sin(i / 420.0) + 0.25 * math.sin(i / 97.0)
        tone = (
            math.sin(i * 0.11 + phase1) * 2800.0
            + math.sin(i * 0.043 + phase2) * 1700.0
        )
        noise = rng.expovariate(1 / 140.0) * (1 if rng.random() < 0.5 else -1)
        value = int(envelope * tone + noise)
        samples.append(max(-32768, min(32767, value)))
    return samples


def g721_audio_alternate(seed: int = 47, n: int = 3600) -> list[int]:
    """The MiBench small.pcm stand-in: different voice, more noise."""
    rng = random.Random(seed)
    samples = []
    for i in range(n):
        envelope = 0.5 + 0.3 * math.sin(i / 240.0)
        tone = math.sin(i * 0.071) * 3900.0 + math.sin(i * 0.029) * 900.0
        noise = rng.expovariate(1 / 260.0) * (1 if rng.random() < 0.5 else -1)
        value = int(envelope * tone + noise)
        samples.append(max(-32768, min(32767, value)))
    return samples


def g721_codes(samples: list[int]) -> list[int]:
    """A 4-bit ADPCM-like code stream for the decoder, derived from audio
    with a simple fixed-step quantizer (distribution-level fidelity; the
    decoder only needs a realistic code stream, not a bit-exact one)."""
    codes = []
    predicted = 0
    for sample in samples:
        diff = sample - predicted
        sign = 8 if diff < 0 else 0
        magnitude = min(7, max(0, int(abs(diff)).bit_length() - 5))
        codes.append(sign | magnitude)
        step = 1 << (magnitude + 4)
        predicted += -step if sign else step
        predicted = max(-32768, min(32767, predicted))
    return codes


# ---------------------------------------------------------------------------
# MPEG2: pixel blocks (encode) and quantized coefficient blocks (decode)
# ---------------------------------------------------------------------------


def mpeg2_pixel_blocks(
    seed: int = 23, frames: int = 3, blocks_per_frame: int = 40
) -> list[int]:
    """Flattened 8x8 pixel blocks.  Mostly textured (distinct) blocks with
    a small flat-background population, so the encoder's fdct sees a low
    (~10%) reuse rate, as in the paper."""
    rng = random.Random(seed)
    flat_levels = [16, 16, 235, 128]  # a couple of recurring backgrounds
    stream: list[int] = []
    for frame in range(frames):
        for b in range(blocks_per_frame):
            if rng.random() < 0.14:
                level = rng.choice(flat_levels)
                stream.extend([level] * 64)
            else:
                base = rng.randrange(30, 220)
                stream.extend(
                    max(0, min(255, base + rng.randrange(-25, 26))) for _ in range(64)
                )
    return stream


def mpeg2_pixel_blocks_alternate(seed: int = 91, frames: int = 3, blocks_per_frame: int = 44):
    """Table-tennis stand-in: slightly more flat area than the default."""
    rng = random.Random(seed)
    stream: list[int] = []
    for frame in range(frames):
        for b in range(blocks_per_frame):
            if rng.random() < 0.18:
                stream.extend([60] * 64)
            else:
                base = rng.randrange(40, 200)
                stream.extend(
                    max(0, min(255, base + rng.randrange(-20, 21))) for _ in range(64)
                )
    return stream


def _sparse_coeff_block(rng: random.Random) -> list[int]:
    block = [0] * 64
    block[0] = rng.randrange(-60, 61)
    for _ in range(rng.randrange(2, 7)):
        block[rng.randrange(1, 20)] = rng.randrange(-12, 13)
    return block


def mpeg2_coeff_blocks(
    seed: int = 29, frames: int = 3, blocks_per_frame: int = 40
) -> list[int]:
    """Flattened quantized-coefficient blocks for the decoder.  Flat image
    regions decode from all-zero / DC-only blocks that repeat in *runs*
    (row-major scan through a flat region), which is exactly why the
    paper's MPEG2_decode hits 33.5% even in a 1-entry reuse buffer and
    ~48.6% overall."""
    rng = random.Random(seed)
    dc_levels = [0, 0, 8, -8, 16]
    stream: list[int] = []
    for frame in range(frames):
        b = 0
        while b < blocks_per_frame:
            if rng.random() < 0.20:
                # a run of identical flat blocks
                run = min(rng.randrange(2, 7), blocks_per_frame - b)
                block = [0] * 64
                block[0] = rng.choice(dc_levels)
                for _ in range(run):
                    stream.extend(block)
                b += run
            else:
                stream.extend(_sparse_coeff_block(rng))
                b += 1
    return stream


def mpeg2_coeff_blocks_alternate(seed: int = 97, frames: int = 3, blocks_per_frame: int = 44):
    """The alternate clip has less flat area, so the decoder's reuse rate
    (and speedup) is somewhat lower than with the default input — the
    paper's 1.48 vs 1.82."""
    rng = random.Random(seed)
    stream: list[int] = []
    for frame in range(frames):
        b = 0
        while b < blocks_per_frame:
            if rng.random() < 0.15:
                run = min(rng.randrange(2, 5), blocks_per_frame - b)
                block = [0] * 64
                block[0] = rng.choice([0, 4, -4])
                for _ in range(run):
                    stream.extend(block)
                b += run
            else:
                stream.extend(_sparse_coeff_block(rng))
                b += 1
    return stream


# ---------------------------------------------------------------------------
# RASTA: critical-band indices
# ---------------------------------------------------------------------------


def rasta_bands(seed: int = 31, frames: int = 160) -> list[int]:
    """Band-index stream for the FR4TR-like filter routine.

    31 distinct bands total (the paper's distinct-input-pattern count).
    Per frame the analysis touches a 12-band working block twice and
    occasionally revisits a just-processed band, giving the Table 5
    shape: tiny hit ratios at 1-4 entries, substantial at 16, and
    essentially the full reuse rate at 64 entries (all 31 patterns fit).
    """
    rng = random.Random(seed)
    stream: list[int] = []
    for frame in range(frames):
        lo = rng.choice([0, 6, 12, 19])  # working block start (<= 19 so max 30)
        block = list(range(lo, min(lo + 12, 31)))
        for repeat in range(2):
            for i, band in enumerate(block):
                stream.append(band)
                if rng.random() < 0.03:
                    stream.append(band)  # rare immediate re-touch
                elif i > 0 and rng.random() < 0.17:
                    stream.append(block[i - 1])  # short-distance revisit
    return stream


def rasta_bands_alternate(seed: int = 67, frames: int = 210) -> list[int]:
    rng = random.Random(seed)
    stream: list[int] = []
    for frame in range(frames):
        lo = rng.choice([0, 4, 8, 12, 16, 19])
        block = list(range(lo, min(lo + 10, 31)))
        for repeat in range(2):
            stream.extend(block)
    return stream


# ---------------------------------------------------------------------------
# UNEPIC: wavelet-coefficient-like integers
# ---------------------------------------------------------------------------


def unepic_coeffs(seed: int = 37, n: int = 9000) -> list[int]:
    """Laplacian-distributed coefficients, globally shuffled.

    Repeats are frequent (reuse rate ~65%) but spread across the whole
    stream, so small LRU buffers catch almost nothing (Table 5's 1.1-1.4%
    for UNEPIC)."""
    rng = random.Random(seed)
    values = []
    for _ in range(n):
        magnitude = int(rng.expovariate(1 / 700.0))
        values.append(magnitude if rng.random() < 0.5 else -magnitude)
    rng.shuffle(values)
    return values


def unepic_coeffs_alternate(seed: int = 73, n: int = 11000) -> list[int]:
    """The baboon.tif stand-in: a tighter coefficient distribution with a
    *higher* repetition rate, so the alternate input out-speeds the
    default, as in the paper's striking Table 10 row (4.25 vs 2.30)."""
    rng = random.Random(seed)
    values = []
    for _ in range(n):
        magnitude = int(rng.expovariate(1 / 300.0))
        values.append(magnitude if rng.random() < 0.5 else -magnitude)
    rng.shuffle(values)
    return values


# ---------------------------------------------------------------------------
# GNU Go: influence-accumulation point classes
# ---------------------------------------------------------------------------


def gnugo_points(seed: int = 41, moves: int = 18, points: int = 230) -> list[int]:
    """(p, q, s, d) quadruples, flattened, for accumulate_influence.

    All four values lie in [0, 19] as in the paper.  p/q are distance
    classes of the scanned point, s a strength class and d a decay class;
    classes are mostly stable between moves (a move only perturbs its
    neighbourhood), so quadruples repeat heavily across moves (reuse rate
    ~98%) while *consecutive* quadruples differ (near-zero small-buffer
    hit ratios, Table 5)."""
    rng = random.Random(seed)
    # static per-point classes
    strength = [rng.randrange(0, 20) // 2 * 2 for _ in range(points)]
    decay = [rng.randrange(0, 8) for _ in range(points)]
    stream: list[int] = []
    for move in range(moves):
        # a move perturbs a handful of points
        for _ in range(4):
            idx = rng.randrange(points)
            strength[idx] = rng.randrange(0, 20)
        for point in range(points):
            p = point % 19
            q = (point // 19) % 19
            stream.extend((p, q, strength[point], decay[point]))
    return stream


def gnugo_points_alternate(seed: int = 83, moves: int = 27, points: int = 230) -> list[int]:
    """The '-b 9' (9-step) run: same board dynamics, more moves."""
    return gnugo_points(seed=seed, moves=moves, points=points)


# ---------------------------------------------------------------------------
# Distribution-shift ("drift") streams for the online reuse governor
# ---------------------------------------------------------------------------
#
# Each drift stream opens with a stationary prefix drawn from the same
# distribution as the workload's default (profiling) stream, then shifts
# to a regime the profile never saw: novel, rarely-repeating values that
# turn the profiled reuse tables into pure overhead.  A static table
# keeps paying probe+commit on every execution; the governor detects the
# negative windowed gain and disables the table (re-probing periodically
# in case the old regime returns).


def unepic_coeffs_drift(seed: int = 101, n: int = 12000, shift_at: int = 3000) -> list[int]:
    """UNEPIC under distribution shift: the image's first strip follows
    the profiled Laplacian, then the coefficients become near-unique
    wide-range values (think a noise-dense image region) with essentially
    no repetition for the rest of the stream."""
    prefix = unepic_coeffs(n=shift_at)  # same distribution profiling saw
    rng = random.Random(seed)
    tail = []
    for i in range(n - shift_at):
        magnitude = 100_000 + i * 7 + rng.randrange(0, 5)
        tail.append(magnitude if rng.random() < 0.5 else -magnitude)
    return prefix + tail


def mpeg2_pixel_blocks_drift(
    seed: int = 109, frames: int = 4, blocks_per_frame: int = 40, shift_frame: int = 1
) -> list[int]:
    """A scene cut from a flat-background clip to pure texture: after
    ``shift_frame`` frames, every 8x8 block is unique noise, so the fdct
    table (profiled at a ~10% reuse rate) never hits again.

    (G.721 is deliberately *not* given a drift variant: quan's input
    domain is small by construction, so its reuse survives any input
    shift — a bounded-domain segment cannot drift.)"""
    rng = random.Random(seed)
    flat_levels = [16, 16, 235, 128]
    stream: list[int] = []
    for frame in range(frames):
        for b in range(blocks_per_frame):
            if frame < shift_frame and rng.random() < 0.14:
                stream.extend([rng.choice(flat_levels)] * 64)
            else:
                base = rng.randrange(30, 220)
                stream.extend(
                    max(0, min(255, base + rng.randrange(-25, 26))) for _ in range(64)
                )
    return stream


def gnugo_points_drift(seed: int = 107, moves: int = 24, points: int = 230, shift_move: int = 6) -> list[int]:
    """Influence classes that stay stable for the opening moves, then the
    whole board churns: every move rerolls every point's strength and
    decay class, so (p, q, s, d) quadruples almost never repeat across
    moves and the merged table stops earning its keep."""
    rng = random.Random(seed)
    strength = [rng.randrange(0, 20) // 2 * 2 for _ in range(points)]
    decay = [rng.randrange(0, 8) for _ in range(points)]
    stream: list[int] = []
    for move in range(moves):
        if move < shift_move:
            for _ in range(4):
                idx = rng.randrange(points)
                strength[idx] = rng.randrange(0, 20)
        else:
            strength = [rng.randrange(0, 20) for _ in range(points)]
            decay = [rng.randrange(0, 20) for _ in range(points)]
        for point in range(points):
            p = point % 19
            q = (point // 19) % 19
            stream.extend((p, q, strength[point], decay[point]))
    return stream
