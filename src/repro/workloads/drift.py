"""Distribution-shift ("drift") workload variants for the online governor.

Each variant shares its parent's source and *stationary* default stream —
profiling and the governor no-op differential behave exactly as for the
parent — but its alternate stream shifts distribution mid-run (see the
``*_drift`` generators in :mod:`repro.workloads.inputs`).  Running the
profiled program on the alternate stream is the adaptive-vs-static
ablation scenario: static tables keep paying probe+commit overhead after
the shift, governed tables disable themselves.

The three parents cover the governor's table shapes: UNEPIC (single
plain table, many fine executions), MPEG2_encode (few, coarse
executions — needs a smaller governor window to close any decision
window at all), GNUGO (merged table with per-member governors).  G.721
has no drift variant on purpose: quan's input domain is bounded by
construction, so its reuse rate survives any input shift.
"""

from __future__ import annotations

from dataclasses import replace

from ..runtime.governor import GovernorPolicy
from .gnugo import GNUGO
from .inputs import gnugo_points_drift, mpeg2_pixel_blocks_drift, unepic_coeffs_drift
from .mpeg2 import MPEG2_ENCODE
from .unepic import UNEPIC

UNEPIC_DRIFT = replace(
    UNEPIC,
    name="UNEPIC_drift",
    alternate_inputs=lambda: unepic_coeffs_drift(),
    alternate_label="distribution shift (novel coefficients after prefix)",
    description="UNEPIC with mid-stream coefficient shift; governor disable scenario",
    is_variant=True,
)

MPEG2_ENCODE_DRIFT = replace(
    MPEG2_ENCODE,
    name="MPEG2_encode_drift",
    alternate_inputs=lambda: mpeg2_pixel_blocks_drift(),
    alternate_label="distribution shift (scene cut to pure texture)",
    description="MPEG2 encoder with scene cut to texture; coarse-grain governor scenario",
    is_variant=True,
    # fdct executes only a few hundred times per stream: the default
    # 256-probe warmup+window would never close a single decision window
    governor=GovernorPolicy(
        warmup_probes=32, window=32, probe_window=16, reprobe_after=256
    ),
)

GNUGO_DRIFT = replace(
    GNUGO,
    name="GNUGO_drift",
    alternate_inputs=lambda: gnugo_points_drift(),
    alternate_label="distribution shift (board churn after opening)",
    description="GNU Go with whole-board churn; merged-table governor scenario",
    is_variant=True,
)

DRIFT_WORKLOADS = [UNEPIC_DRIFT, MPEG2_ENCODE_DRIFT, GNUGO_DRIFT]
