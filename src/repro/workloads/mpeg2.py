"""MPEG2 workloads: encode (fdct) and decode (Reference_IDCT).

Both programs transform 8x8 blocks with double-precision trigonometric
matrices, exactly the structure of mpeg2encode's ``fdct`` and
mpeg2play's ``Reference_IDCT`` (the O(N^4) direct transform).  The block
is both the input and the output of the memoized segment: a 64-word hash
key — the paper's "much longer than the single integer" case with
correspondingly higher hashing overhead, high computation granularity
(software-emulated floats on the SA-1110), and the only workload where
hash collisions occur.

Reuse comes from repeated blocks: few in camera-like pixel data (encode,
~10%), many in quantized coefficient data where flat image regions decode
from identical sparse blocks (decode, ~48%).
"""

from __future__ import annotations

import math

from .base import PaperNumbers, Workload
from .inputs import (
    mpeg2_coeff_blocks,
    mpeg2_coeff_blocks_alternate,
    mpeg2_pixel_blocks,
    mpeg2_pixel_blocks_alternate,
)


def _dct_matrix_literal() -> str:
    """The 8x8 DCT-II basis matrix as a mini-C float initializer."""
    rows = []
    for u in range(8):
        alpha = math.sqrt(1.0 / 8.0) if u == 0 else math.sqrt(2.0 / 8.0)
        row = [alpha * math.cos((2 * x + 1) * u * math.pi / 16.0) for x in range(8)]
        rows.append("{" + ", ".join(f"{v:.9f}" for v in row) + "}")
    return "{" + ",\n ".join(rows) + "}"


_DCT = _dct_matrix_literal()

_ENCODE_SOURCE = f"""
float dctc[8][8] = {_DCT};
int qstep[8] = {{8, 10, 12, 14, 16, 20, 24, 28}};
int blk[64];

static void fdct_block(int *b)
{{
    float out[64];
    int x;
    int y;
    int u;
    int v;
    for (u = 0; u < 8; u++)
        for (v = 0; v < 8; v++) {{
            float s = 0.0;
            for (x = 0; x < 8; x++)
                for (y = 0; y < 8; y++)
                    s = s + dctc[u][x] * dctc[v][y] * b[x * 8 + y];
            out[u * 8 + v] = s;
        }}
    for (u = 0; u < 64; u++)
        b[u] = (int) (out[u] + ((out[u] > 0.0) ? 0.5 : -0.5));
}}

int main(void)
{{
    int checksum = 0;
    while (__input_avail()) {{
        int i;
        for (i = 0; i < 64; i++)
            blk[i] = __input_int();
        fdct_block(blk);
        for (i = 0; i < 64; i++)
            checksum += blk[i] / qstep[i >> 3];
        __output_int(checksum & 255);
    }}
    __output_int(checksum);
    return checksum;
}}
"""

_DECODE_SOURCE = f"""
float dctc[8][8] = {_DCT};
int blk[64];

static void idct_block(int *b)
{{
    float out[64];
    int x;
    int y;
    int u;
    int v;
    /* Reference_IDCT: direct two-dimensional inverse transform */
    for (x = 0; x < 8; x++)
        for (y = 0; y < 8; y++) {{
            float s = 0.0;
            for (u = 0; u < 8; u++)
                for (v = 0; v < 8; v++)
                    s = s + dctc[u][x] * dctc[v][y] * b[u * 8 + v];
            out[x * 8 + y] = s;
        }}
    for (x = 0; x < 64; x++) {{
        int p = (int) (out[x] + ((out[x] > 0.0) ? 0.5 : -0.5)) + 128;
        if (p < 0)
            p = 0;
        if (p > 255)
            p = 255;
        b[x] = p;
    }}
}}

int main(void)
{{
    int checksum = 0;
    while (__input_avail()) {{
        int i;
        for (i = 0; i < 64; i++)
            blk[i] = __input_int();
        idct_block(blk);
        for (i = 0; i < 64; i++)
            checksum += blk[i];
        __output_int(checksum & 255);
    }}
    __output_int(checksum);
    return checksum;
}}
"""

MPEG2_ENCODE = Workload(
    name="MPEG2_encode",
    source=_ENCODE_SOURCE,
    default_inputs=lambda: mpeg2_pixel_blocks(),
    alternate_inputs=lambda: mpeg2_pixel_blocks_alternate(),
    alternate_label="Tektronix(table tennis)",
    key_function="fdct_block",
    description="MPEG2 encoder fdct on 8x8 blocks; 64-word keys, low reuse rate",
    paper=PaperNumbers(
        granularity_us=13859.0,
        overhead_us=49.4,
        distinct_inputs=7617,
        reuse_rate=0.098,
        table_bytes=int(1.98 * 1024 * 1024),
        speedup_o0=1.07,
        speedup_o3=1.06,
        energy_saving_o0=0.063,
        energy_saving_o3=0.059,
        speedup_alternate=1.19,
        lru_hits=(0.031, 0.051, 0.052, 0.054),
        analyzed_cs=10,
        profiled_cs=7,
        transformed_cs=1,
    ),
    min_executions=16,
)

MPEG2_DECODE = Workload(
    name="MPEG2_decode",
    source=_DECODE_SOURCE,
    default_inputs=lambda: mpeg2_coeff_blocks(),
    alternate_inputs=lambda: mpeg2_coeff_blocks_alternate(),
    alternate_label="Tektronix(table tennis)",
    key_function="idct_block",
    description="MPEG2 decoder Reference_IDCT; identical sparse blocks repeat in runs",
    paper=PaperNumbers(
        granularity_us=12029.0,
        overhead_us=52.7,
        distinct_inputs=4068,
        reuse_rate=0.486,
        table_bytes=int(1.98 * 1024 * 1024),
        speedup_o0=1.82,
        speedup_o3=1.80,
        energy_saving_o0=0.450,
        energy_saving_o3=0.443,
        speedup_alternate=1.48,
        lru_hits=(0.335, 0.447, 0.447, 0.447),
        analyzed_cs=11,
        profiled_cs=5,
        transformed_cs=1,
    ),
    min_executions=16,
)
