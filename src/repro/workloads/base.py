"""Workload definition shared by all benchmark programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(frozen=True)
class PaperNumbers:
    """The paper's reported figures for one program (for EXPERIMENTS.md
    side-by-side reporting; absolute values are not reproduction targets,
    shapes are)."""

    granularity_us: float = 0.0
    overhead_us: float = 0.0
    distinct_inputs: int = 0
    reuse_rate: float = 0.0
    table_bytes: int = 0
    speedup_o0: float = 0.0
    speedup_o3: float = 0.0
    energy_saving_o0: float = 0.0
    energy_saving_o3: float = 0.0
    speedup_alternate: float = 0.0
    lru_hits: tuple = ()  # (1, 4, 16, 64)-entry hit ratios
    analyzed_cs: int = 0
    profiled_cs: int = 0
    transformed_cs: int = 0


@dataclass(frozen=True)
class Workload:
    """One benchmark program: mini-C source plus its input streams."""

    name: str
    source: str
    default_inputs: Callable[[], list]
    alternate_inputs: Callable[[], list]
    alternate_label: str
    key_function: str  # the function holding the headline segment
    description: str
    paper: PaperNumbers = field(default_factory=PaperNumbers)
    min_executions: int = 32
    # programs excluded from harmonic means (the quan variants)
    is_variant: bool = False
    # optional table-memory budget in bytes (the GNU Go experiment)
    memory_budget_bytes: Optional[int] = None
    # optional online-governor thresholds (a GovernorPolicy); workloads
    # with few, coarse segment executions need smaller windows than the
    # runtime default to close any decision window at all
    governor: Optional[object] = None
