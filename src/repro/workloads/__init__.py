"""Benchmark workloads: mini-C programs + synthetic input generators."""

from .base import PaperNumbers, Workload
from .registry import ALL_WORKLOADS, PRIMARY_WORKLOADS, WORKLOADS, get_workload

__all__ = [
    "PaperNumbers",
    "Workload",
    "ALL_WORKLOADS",
    "PRIMARY_WORKLOADS",
    "WORKLOADS",
    "get_workload",
]
