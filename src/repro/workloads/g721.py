"""G721 voice codec workloads (G721_encode / G721_decode + quan variants).

The reuse-relevant structure follows the Mediabench G.721 code: a
``quan(val, table, size)`` linear-search quantizer called from the
difference quantization and (via ``fmult``) from every predictor tap, an
adaptive 4-tap predictor, and per-sample code emission.  The compiler
scheme specializes ``quan`` down to the single input ``val`` (power2 is
invariant, size is the literal 15 at every call site) and memoizes the
specialized version — the paper's Figure 2/4 story, verbatim.

Variants (used in Tables 6/7):

* ``_s``: the power2 table is replaced by shift operations (Figure 10);
* ``_b``: the linear search is replaced by a fully unrolled binary search
  (Figure 9).
"""

from __future__ import annotations

from .base import PaperNumbers, Workload
from .inputs import g721_audio, g721_audio_alternate, g721_codes

QUAN_LINEAR = """
static int quan(int val, int *table, int size)
{
    int i;
    for (i = 0; i < size; i++)
        if (val < table[i])
            break;
    return (i);
}
"""

# Figure 10 of the paper: table replaced by shift operations.
QUAN_SHIFT = """
static int quan(int val, int *table, int size)
{
    int i;
    int j;
    j = 1;
    for (i = 0; i < 15; i++) {
        if (val < j)
            break;
        j = j << 1;
    }
    return (i);
}
"""

# Figure 9 of the paper: complete unrolling + binary search.
QUAN_BINARY = """
static int quan(int val, int *table, int size)
{
    int i;
    if (val < power2[7]) {
        if (val < power2[3]) {
            if (val < power2[1])
                i = (val < power2[0]) ? 0 : 1;
            else
                i = (val < power2[2]) ? 2 : 3;
        }
        else {
            if (val < power2[5])
                i = (val < power2[4]) ? 4 : 5;
            else
                i = (val < power2[6]) ? 6 : 7;
        }
    }
    else {
        if (val < power2[11]) {
            if (val < power2[9])
                i = (val < power2[8]) ? 8 : 9;
            else
                i = (val < power2[10]) ? 10 : 11;
        }
        else {
            if (val < power2[13])
                i = (val < power2[12]) ? 12 : 13;
            else
                i = (val < power2[14]) ? 14 : 15;
        }
    }
    return (i);
}
"""

_COMMON = """
int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};

int coef[4] = {160, 400, 640, 880};
int hist[4];

%(quan)s

static int fmult(int an, int srn)
{
    int anmag;
    int anexp;
    int prod;
    anmag = (an > 0) ? an : -an;
    anexp = quan(anmag, power2, 15);
    /* mantissa normalization, as in the fixed-point G.721 fmult */
    int mant = anmag;
    while (mant > 31)
        mant = mant >> 1;
    prod = ((anmag + mant) * srn) >> 10;
    if (anexp > 10)
        prod = prod >> (anexp - 10);
    return (an < 0) ? -prod : prod;
}

static int predict(void)
{
    int p = 0;
    int k;
    for (k = 0; k < 4; k++)
        p += fmult(coef[k], hist[k]);
    return p >> 2;
}

static void update(int sr)
{
    /* the history holds reconstructed signal values (diverse), as the
       pole section of the G.721 predictor does */
    int k;
    for (k = 3; k > 0; k--)
        hist[k] = hist[k - 1];
    hist[0] = sr;
    /* sign-sign coefficient adaptation on a +/-4 lattice: coefficients
       keep moving every sample (no immediate value repeats at quan) but
       revisit the same few hundred lattice points (high overall reuse) */
    for (k = 0; k < 4; k++) {
        int lo = 64 + k * 240;
        int hi = lo + 232;
        if ((sr > 0) == (hist[k] > 0))
            coef[k] = coef[k] + 8;
        else
            coef[k] = coef[k] - 8;
        /* disjoint per-tap ranges (taps never collide in value) with
           signal-jittered bounces (revisits are spread out in time) */
        if (coef[k] > hi)
            coef[k] = hi - 8 - ((sr & 7) << 3);
        if (coef[k] < lo)
            coef[k] = lo + 8 + ((-sr & 7) << 3);
    }
}
"""

ENCODE_MAIN = """
int main(void)
{
    int checksum = 0;
    while (__input_avail()) {
        int sample = __input_int();
        int p = predict();
        int diff = sample - p;
        int sign = 0;
        if (diff < 0) {
            sign = 8;
            diff = -diff;
        }
        int dq = quan(diff, power2, 15);
        if (dq > 7)
            dq = 7;
        int code = sign | dq;
        int mag = power2[dq + 4] >> 2;
        int dqr = sign ? -mag : mag;
        update(p + dqr);
        __output_int(code);
        checksum += code;
    }
    __output_int(checksum);
    return checksum;
}
"""

DECODE_MAIN = """
int main(void)
{
    int checksum = 0;
    while (__input_avail()) {
        int code = __input_int();
        int sign = code & 8;
        int dq = code & 7;
        int mag = power2[dq + 4] >> 2;
        int dqr = sign ? -mag : mag;
        int p = predict();
        int sample = p + dqr;
        int level = quan((sample > 0) ? sample : -sample, power2, 15);
        update(sample);
        __output_int(sample);
        checksum += sample + level;
    }
    __output_int(checksum);
    return checksum;
}
"""


def _source(quan: str, main: str) -> str:
    return (_COMMON % {"quan": quan}) + main


def _make(name, quan, main, default, alternate, alt_label, paper, variant):
    return Workload(
        name=name,
        source=_source(quan, main),
        default_inputs=default,
        alternate_inputs=alternate,
        alternate_label=alt_label,
        key_function="quan",
        description="G.721 voice codec; quan linear-search quantizer memoized after specialization",
        paper=paper,
        is_variant=variant,
    )


_ENC_PAPER = PaperNumbers(
    granularity_us=1.28,
    overhead_us=0.12,
    distinct_inputs=9155,
    reuse_rate=0.994,
    table_bytes=86 * 1024,
    speedup_o0=1.56,
    speedup_o3=1.31,
    energy_saving_o0=0.356,
    energy_saving_o3=0.224,
    speedup_alternate=1.35,
    lru_hits=(0.001, 0.008, 0.031, 0.122),
    analyzed_cs=81,
    profiled_cs=4,
    transformed_cs=2,
)

_DEC_PAPER = PaperNumbers(
    granularity_us=1.38,
    overhead_us=0.15,
    distinct_inputs=8884,
    reuse_rate=0.997,
    table_bytes=86 * 1024,
    speedup_o0=1.60,
    speedup_o3=1.34,
    energy_saving_o0=0.372,
    energy_saving_o3=0.233,
    speedup_alternate=1.36,
    lru_hits=(0.0004, 0.005, 0.023, 0.099),
    analyzed_cs=84,
    profiled_cs=7,
    transformed_cs=2,
)


def _enc_inputs():
    return g721_audio()


def _enc_inputs_alt():
    return g721_audio_alternate()


def _dec_inputs():
    return g721_codes(g721_audio())


def _dec_inputs_alt():
    return g721_codes(g721_audio_alternate())


G721_ENCODE = _make(
    "G721_encode", QUAN_LINEAR, ENCODE_MAIN, _enc_inputs, _enc_inputs_alt,
    "MiBench", _ENC_PAPER, False,
)
G721_ENCODE_S = _make(
    "G721_encode_s", QUAN_SHIFT, ENCODE_MAIN, _enc_inputs, _enc_inputs_alt,
    "MiBench", PaperNumbers(speedup_o0=1.48, speedup_o3=1.21), True,
)
G721_ENCODE_B = _make(
    "G721_encode_b", QUAN_BINARY, ENCODE_MAIN, _enc_inputs, _enc_inputs_alt,
    "MiBench", PaperNumbers(speedup_o0=1.11, speedup_o3=1.08), True,
)
G721_DECODE = _make(
    "G721_decode", QUAN_LINEAR, DECODE_MAIN, _dec_inputs, _dec_inputs_alt,
    "MiBench", _DEC_PAPER, False,
)
G721_DECODE_S = _make(
    "G721_decode_s", QUAN_SHIFT, DECODE_MAIN, _dec_inputs, _dec_inputs_alt,
    "MiBench", PaperNumbers(speedup_o0=1.50, speedup_o3=1.25), True,
)
G721_DECODE_B = _make(
    "G721_decode_b", QUAN_BINARY, DECODE_MAIN, _dec_inputs, _dec_inputs_alt,
    "MiBench", PaperNumbers(speedup_o0=1.13, speedup_o3=1.10), True,
)
