"""Adaptive-vs-static ablation: the online reuse governor under drift.

The paper freezes reuse decisions at compile time; the governor
(:mod:`repro.runtime.governor`) revisits them at run time.  This module
measures what that buys: each drift workload is profiled on its
*stationary* default stream, then the transformed program executes on
the *shifted* alternate stream twice — once with static tables (the
paper's scheme, which keeps paying probe overhead after the shift) and
once with governed tables (which disable themselves).  The row records
the cycle gap, every governor transition, and the ledger's runtime
``governor`` verdicts next to the compile-time gates.

``benchmarks/bench_adaptive.py`` writes the result as
``BENCH_adaptive.json`` at the repo root.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .. import api
from ..workloads.base import Workload
from ..workloads.drift import DRIFT_WORKLOADS

__all__ = ["workload_config", "ablate_workload", "adaptive_ablation"]


def workload_config(workload: Workload) -> api.PipelineConfig:
    """The pipeline knobs a registered workload asks for, including its
    governor-policy override (workloads with few, coarse segment
    executions carry smaller windows than the runtime default)."""
    return api.PipelineConfig(
        min_executions=workload.min_executions,
        memory_budget_bytes=workload.memory_budget_bytes,
        governor=workload.governor or api.GovernorPolicy(),
    )


def ablate_workload(workload: Workload, opt: str = "O0") -> dict:
    """One ablation row: profile on the default stream, run the
    transformed program on the alternate stream, static vs governed."""
    config = workload_config(workload)
    default_inputs = workload.default_inputs()
    alternate_inputs = workload.alternate_inputs()
    runs: dict[bool, api.RunResult] = {}
    governor_verdicts: dict[str, dict] = {}
    for governed in (False, True):
        program = api.compile(
            workload.source,
            api.CompileOptions(opt=opt, config=config, governed=governed),
        )
        program.profile(default_inputs)
        runs[governed] = program.run(alternate_inputs)
        if governed:
            for seg_id in sorted(program.ledger.records):
                record = program.ledger.records[seg_id]
                for verdict in record.verdicts:
                    if verdict.stage == "governor":
                        governor_verdicts[record.label] = {
                            "passed": verdict.passed,
                            **verdict.detail,
                        }
    static, governed_run = runs[False], runs[True]
    return {
        "opt": opt,
        "static_cycles": static.cycles,
        "governed_cycles": governed_run.cycles,
        "cycles_saved": static.cycles - governed_run.cycles,
        "saved_pct": round(
            (static.cycles - governed_run.cycles) / static.cycles * 100, 3
        ),
        "outputs_match": static.output_checksum == governed_run.output_checksum,
        "final_states": {
            str(seg_id): snap["state"]
            for seg_id, snap in sorted(governed_run.governor.items())
        },
        "transitions": {
            str(seg_id): transitions
            for seg_id, transitions in sorted(
                governed_run.governor_transitions().items()
            )
        },
        "ledger_governor_verdicts": governor_verdicts,
    }


def adaptive_ablation(
    workloads: Optional[Sequence[Workload]] = None, opt: str = "O0"
) -> dict:
    """Static-vs-governed comparison over the drift workload set."""
    rows = {
        workload.name: ablate_workload(workload, opt)
        for workload in (workloads if workloads is not None else DRIFT_WORKLOADS)
    }
    return {"opt": opt, "workloads": rows}
