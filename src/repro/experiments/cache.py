"""Disk cache for expensive experiment artifacts.

The profiling pipeline and the measured runs are pure functions of
(workload source, pipeline configuration, input stream, code version) —
there is no reason to recompute them between benchmark invocations, and
the full suite is dominated by exactly these recomputations.  This module
persists the two artifact kinds the harness produces:

* :class:`~repro.reuse.pipeline.PipelineResult` objects (pickled: they
  hold an AST with shared ``Symbol`` identity that JSON cannot express);
* :class:`~repro.experiments.runner.MeasuredRun` plus the per-segment
  :class:`~repro.runtime.hashtable.TableStats` of transformed runs
  (JSON: small, human-inspectable, diffable).

Invalidation is entirely key-based: every key is a SHA-256 over the
artifact kind, the workload *source text*, the full configuration
(``dataclasses.asdict`` of the :class:`PipelineConfig` and any
measurement knobs), the ``repr`` of the input stream, and
:data:`CODE_VERSION`.  Bump :data:`CODE_VERSION` whenever a change
anywhere in the interpreter, cost model, or pipeline can alter measured
numbers — stale entries are then simply never looked up again.

The cache root defaults to ``.repro_cache/`` under the current working
directory and can be redirected with the ``REPRO_CACHE_DIR`` environment
variable.  Writes are atomic (temp file + ``os.replace``), so a killed
run never leaves a truncated artifact behind; unreadable entries are
treated as misses.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

from ..obs import get_tracer

# Participates in every cache key.  Bump on any change that can alter
# measured cycles/energy/checksums or pipeline decisions.
# "2": TableStats grew telemetry fields (empty_misses, evictions,
# occupancy_hwm, hit-ratio samples) that must round-trip through the cache.
# "3": TableSpec carries governor thresholds (granularity/overhead/policy)
# and PipelineConfig grew the ``governor`` field, both inside pickled
# PipelineResults.
# "4": TableSpec/PipelineConfig carry the TableStats sample budget and
# TableStats itself grew the ``sample_budget`` field.
CODE_VERSION = "4"

_ENV_VAR = "REPRO_CACHE_DIR"
_DEFAULT_ROOT = ".repro_cache"


def cache_key(*parts) -> str:
    """SHA-256 key over ``repr`` of the parts plus :data:`CODE_VERSION`."""
    h = hashlib.sha256()
    h.update(CODE_VERSION.encode())
    for part in parts:
        h.update(b"\x00")
        h.update(repr(part).encode())
    return h.hexdigest()


class ExperimentCache:
    """Content-addressed store for pipeline results and measured runs."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        if root is None:
            root = os.environ.get(_ENV_VAR) or _DEFAULT_ROOT
        self.root = Path(root)

    # -- paths ---------------------------------------------------------------

    def _path(self, kind: str, key: str, suffix: str) -> Path:
        return self.root / kind / f"{key}{suffix}"

    @staticmethod
    def _write_atomic(path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- pipeline results (pickle) ------------------------------------------

    def load_pipeline(self, key: str):
        path = self._path("pipelines", key, ".pkl")
        try:
            with open(path, "rb") as f:
                result = pickle.load(f)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            get_tracer().event("cache.miss", category="cache", kind="pipeline", key=key)
            return None
        get_tracer().event("cache.hit", category="cache", kind="pipeline", key=key)
        return result

    def store_pipeline(self, key: str, result) -> None:
        self._write_atomic(
            self._path("pipelines", key, ".pkl"),
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
        )

    # -- measured runs (JSON) -----------------------------------------------

    def load_run(self, key: str):
        """Return ``(MeasuredRun, stats or None)`` or ``None`` on miss."""
        from ..runtime.hashtable import TableStats
        from .runner import MeasuredRun

        path = self._path("runs", key, ".json")
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
            run = MeasuredRun(**doc["run"])
            stats = doc.get("stats")
            if stats is not None:
                stats = {
                    int(seg_id): TableStats(**fields)
                    for seg_id, fields in stats.items()
                }
            get_tracer().event("cache.hit", category="cache", kind="run", key=key)
            return run, stats
        except (OSError, ValueError, KeyError, TypeError):
            get_tracer().event("cache.miss", category="cache", kind="run", key=key)
            return None

    def store_run(self, key: str, run, stats=None) -> None:
        doc: dict = {
            "run": {
                "seconds": run.seconds,
                "cycles": run.cycles,
                "energy_joules": run.energy_joules,
                "output_checksum": run.output_checksum,
            }
        }
        if stats is not None:
            # Full-fidelity snapshot: every TableStats field (including the
            # hit-ratio sample series) must survive the JSON round-trip so
            # cached runs report identical telemetry to fresh ones.
            doc["stats"] = {
                str(seg_id): dataclasses.asdict(s)
                for seg_id, s in stats.items()
            }
        self._write_atomic(
            self._path("runs", key, ".json"),
            json.dumps(doc, indent=1, sort_keys=True).encode(),
        )

    # -- maintenance ---------------------------------------------------------

    def clear(self) -> None:
        """Delete every cached artifact (the directories stay)."""
        for kind in ("pipelines", "runs"):
            directory = self.root / kind
            if not directory.is_dir():
                continue
            for path in directory.iterdir():
                try:
                    path.unlink()
                except OSError:
                    pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExperimentCache({str(self.root)!r})"
