"""CSV export of tables and figures (for external plotting)."""

from __future__ import annotations

import csv
import io
from typing import Sequence

from .figures import Histogram, SweepSeries


def _csv(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()


def table3_csv(rows) -> str:
    return _csv(
        ["program", "computation_us", "overhead_us", "distinct_inputs",
         "reuse_rate", "table_bytes"],
        [
            [r.program, f"{r.computation_us:.4f}", f"{r.overhead_us:.4f}",
             r.distinct_inputs, f"{r.reuse_rate:.6f}", r.table_bytes]
            for r in rows
        ],
    )


def table4_csv(rows) -> str:
    return _csv(
        ["program", "analyzed", "profiled", "transformed", "code_lines"],
        [[r.program, r.analyzed, r.profiled, r.transformed, r.code_lines] for r in rows],
    )


def table5_csv(rows) -> str:
    return _csv(
        ["program", "hit_1", "hit_4", "hit_16", "hit_64", "buffer64_bytes"],
        [
            [r.program] + [f"{r.hit_ratios[s]:.6f}" for s in (1, 4, 16, 64)]
            + [r.buffer64_bytes]
            for r in rows
        ],
    )


def speedup_csv(rows) -> str:
    return _csv(
        ["program", "original_s", "transformed_s", "speedup", "in_mean"],
        [
            [r.program, f"{r.original_s:.6f}", f"{r.transformed_s:.6f}",
             f"{r.speedup:.4f}", int(r.in_mean)]
            for r in rows
        ],
    )


def energy_csv(rows) -> str:
    return _csv(
        ["program", "original_j", "transformed_j", "saving"],
        [
            [r.program, f"{r.original_j:.6f}", f"{r.transformed_j:.6f}",
             f"{r.saving:.6f}"]
            for r in rows
        ],
    )


def table10_csv(rows) -> str:
    return _csv(
        ["program", "input_source", "original_s", "transformed_s", "speedup"],
        [
            [r.program, r.input_source, f"{r.original_s:.6f}",
             f"{r.transformed_s:.6f}", f"{r.speedup:.4f}"]
            for r in rows
        ],
    )


def histogram_csv(histogram: Histogram) -> str:
    return _csv(["bin", "count"], list(histogram.bins))


def sweep_csv(series: list[SweepSeries]) -> str:
    rows = []
    for line in series:
        for size, speedup in line.points:
            rows.append([line.program, "optimal" if size is None else size,
                         f"{speedup:.4f}"])
    return _csv(["program", "table_bytes", "speedup"], rows)
