"""Text rendering for tables and figures (aligned monospace output).

The series renderers (sparklines, hit-ratio series, perf history) live
in :mod:`repro.obs.render`, shared with the ``repro dash`` dashboard;
they are re-exported here under their historical names.
"""

from __future__ import annotations

from typing import Optional

from ..obs.render import (
    SPARK_BLOCKS,
    render_hit_ratio_series,
    render_perf_history,
    render_table,
    sparkline,
)
from .figures import Histogram, SweepSeries

# historical names; existing callers and tests import these from here
_render = render_table
_sparkline = sparkline
_SPARK_BLOCKS = SPARK_BLOCKS

__all__ = [
    "render_table3",
    "render_table4",
    "render_table5",
    "render_table10",
    "render_speedups",
    "render_energy",
    "render_reuse_stats",
    "render_governor",
    "render_hit_ratio_series",
    "render_perf_history",
    "render_histogram",
    "render_sweep",
]


def _kb(n_bytes: int) -> str:
    if n_bytes >= 1024 * 1024:
        return f"{n_bytes / 1024 / 1024:.2f}MB"
    return f"{n_bytes / 1024:.1f}KB"


def render_table3(rows) -> str:
    body = [
        [
            r.program,
            f"{r.computation_us:.2f}",
            f"{r.overhead_us:.2f}",
            str(r.distinct_inputs),
            f"{r.reuse_rate * 100:.1f}%",
            _kb(r.table_bytes),
            f"{r.paper_computation_us:g}/{r.paper_overhead_us:g}",
            f"{r.paper_distinct_inputs}/{r.paper_reuse_rate * 100:.1f}%",
        ]
        for r in rows
    ]
    return "Table 3: factors affecting the optimization decision\n" + _render(
        ["Program", "C(us)", "O(us)", "DIP#", "ReuseRate", "TableSize",
         "paper C/O", "paper DIP/R"],
        body,
    )


def render_table4(rows) -> str:
    body = [
        [
            r.program,
            r.functions,
            str(r.analyzed),
            str(r.profiled),
            str(r.transformed),
            f"{r.code_lines}",
            f"{r.paper_analyzed}/{r.paper_profiled}/{r.paper_transformed}",
        ]
        for r in rows
    ]
    return "Table 4: number of code segments\n" + _render(
        ["Program", "Functions", "Analyzed", "Profiled", "Transformed",
         "Lines", "paper A/P/T"],
        body,
    )


def render_table5(rows) -> str:
    body = []
    for r in rows:
        paper = (
            "/".join(f"{v * 100:.1f}" for v in r.paper_hit_ratios)
            if r.paper_hit_ratios
            else "-"
        )
        body.append(
            [
                r.program,
                *(f"{r.hit_ratios[s] * 100:.1f}%" for s in (1, 4, 16, 64)),
                _kb(r.buffer64_bytes),
                paper,
            ]
        )
    return "Table 5: hit ratios with limited LRU buffers\n" + _render(
        ["Program", "1-entry", "4-entry", "16-entry", "64-entry",
         "64-entry size", "paper(1/4/16/64 %)"],
        body,
    )


def render_speedups(rows, mean: float, opt_level: str, table_no: int) -> str:
    body = [
        [
            r.program,
            f"{r.original_s:.4f}",
            f"{r.transformed_s:.4f}",
            f"{r.speedup:.2f}",
            f"{r.paper_speedup:.2f}" if r.paper_speedup else "-",
        ]
        for r in rows
    ]
    body.append(["Harmonic Mean", "", "", f"{mean:.2f}", ""])
    return (
        f"Table {table_no}: performance improvement with {opt_level}\n"
        + _render(
            ["Program", "Original(s)", "CompReuse(s)", "Speedup", "paper"], body
        )
    )


def render_energy(rows, opt_level: str, table_no: int) -> str:
    body = [
        [
            r.program,
            f"{r.original_j:.3f}",
            f"{r.transformed_j:.3f}",
            f"{r.saving * 100:.1f}%",
            f"{r.paper_saving * 100:.1f}%" if r.paper_saving else "-",
        ]
        for r in rows
    ]
    return f"Table {table_no}: energy saving with {opt_level}\n" + _render(
        ["Program", "Original(J)", "CompReuse(J)", "Saving", "paper"], body
    )


def render_table10(rows, mean: float) -> str:
    body = [
        [
            r.program,
            r.input_source,
            f"{r.original_s:.4f}",
            f"{r.transformed_s:.4f}",
            f"{r.speedup:.2f}",
            f"{r.paper_speedup:.2f}" if r.paper_speedup else "-",
        ]
        for r in rows
    ]
    body.append(["Harmonic Mean", "", "", "", f"{mean:.2f}", ""])
    return "Table 10: performance improvement for different input files (O3)\n" + _render(
        ["Program", "Inputs", "Original(s)", "CompReuse(s)", "Speedup", "paper"],
        body,
    )


def render_reuse_stats(table_stats: dict, merged_members: Optional[dict] = None) -> str:
    """Per-table runtime telemetry, one row per segment.

    ``table_stats`` maps segment id -> :class:`TableStats`; for segments
    probing through a shared :class:`MergedReuseTable`, the row shows the
    *member* statistics and names the shared table (``merged_members``
    maps table id -> member segment ids), so merged tables keep
    per-member identity in reports.
    """
    group_of = {
        seg_id: table_id
        for table_id, members in (merged_members or {}).items()
        for seg_id in members
    }
    body = []
    for seg_id in sorted(table_stats):
        s = table_stats[seg_id]
        ratio = f"{s.hits / s.probes * 100:.1f}%" if s.probes else "-"
        body.append(
            [
                str(seg_id),
                str(s.probes),
                str(s.hits),
                ratio,
                str(s.collisions),
                str(s.empty_misses),
                str(s.evictions),
                str(s.occupancy_hwm),
                group_of.get(seg_id, "-"),
            ]
        )
    return "Reuse table telemetry\n" + _render(
        ["Segment", "Probes", "Hits", "HitRatio", "Collisions",
         "EmptyMiss", "Evictions", "OccHWM", "SharedTable"],
        body,
    )


def render_governor(governor: dict) -> str:
    """The online governor's per-segment verdicts after a governed run.

    ``governor`` maps segment id -> the snapshot dict produced by
    :meth:`repro.runtime.governor.SegmentGovernor.snapshot` (surfaced as
    ``Metrics.governor``): final state, disable/re-enable/resize/flush
    counters, and the full transition history.
    """
    if not governor:
        return "Governor: no governed tables installed"
    body = []
    transitions_out = []
    for seg_id in sorted(governor):
        snap = governor[seg_id]
        body.append(
            [
                str(seg_id),
                snap["state"],
                str(snap["probes_observed"]),
                str(snap["bypassed_executions"]),
                str(snap["disables"]),
                str(snap["reenables"]),
                str(snap["resizes"]),
                str(snap["flushes"]),
            ]
        )
        for t in snap["transitions"]:
            gain = f" gain={t['gain']:+.1f}" if "gain" in t else ""
            transitions_out.append(
                f"  segment {seg_id} @probe {t['probe']}: "
                f"{t['from']} -> {t['to']} ({t['reason']}{gain})"
            )
    out = "Governor state\n" + _render(
        ["Segment", "State", "Probes", "Bypassed",
         "Disables", "Reenables", "Resizes", "Flushes"],
        body,
    )
    if transitions_out:
        out += "\nTransitions\n" + "\n".join(transitions_out)
    else:
        out += "\nTransitions\n  (none: every table stayed profitable)"
    return out


def render_histogram(histogram: Histogram, width: int = 50) -> str:
    if not histogram.bins:
        return f"{histogram.title}\n(no data)"
    peak = max(count for _, count in histogram.bins) or 1
    label_w = max(len(label) for label, _ in histogram.bins)
    lines = [histogram.title]
    for label, count in histogram.bins:
        bar = "#" * max(0, round(count / peak * width))
        lines.append(f"{label.rjust(label_w)} |{bar} {count}")
    return "\n".join(lines)


def render_sweep(series: list[SweepSeries], opt_level: str, figure_no: int) -> str:
    sizes = [p[0] for p in series[0].points]
    headers = ["Program"] + [
        ("optimal" if s is None else _kb(s)) for s in sizes
    ]
    body = [
        [line.program] + [f"{speedup:.2f}" for _, speedup in line.points]
        for line in series
    ]
    return (
        f"Figure {figure_no}: speedups vs hash table size ({opt_level})\n"
        + _render(headers, body)
    )
