"""Text rendering for tables and figures (aligned monospace output)."""

from __future__ import annotations

from typing import Optional, Sequence

from .figures import Histogram, SweepSeries


def _render(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def _kb(n_bytes: int) -> str:
    if n_bytes >= 1024 * 1024:
        return f"{n_bytes / 1024 / 1024:.2f}MB"
    return f"{n_bytes / 1024:.1f}KB"


def render_table3(rows) -> str:
    body = [
        [
            r.program,
            f"{r.computation_us:.2f}",
            f"{r.overhead_us:.2f}",
            str(r.distinct_inputs),
            f"{r.reuse_rate * 100:.1f}%",
            _kb(r.table_bytes),
            f"{r.paper_computation_us:g}/{r.paper_overhead_us:g}",
            f"{r.paper_distinct_inputs}/{r.paper_reuse_rate * 100:.1f}%",
        ]
        for r in rows
    ]
    return "Table 3: factors affecting the optimization decision\n" + _render(
        ["Program", "C(us)", "O(us)", "DIP#", "ReuseRate", "TableSize",
         "paper C/O", "paper DIP/R"],
        body,
    )


def render_table4(rows) -> str:
    body = [
        [
            r.program,
            r.functions,
            str(r.analyzed),
            str(r.profiled),
            str(r.transformed),
            f"{r.code_lines}",
            f"{r.paper_analyzed}/{r.paper_profiled}/{r.paper_transformed}",
        ]
        for r in rows
    ]
    return "Table 4: number of code segments\n" + _render(
        ["Program", "Functions", "Analyzed", "Profiled", "Transformed",
         "Lines", "paper A/P/T"],
        body,
    )


def render_table5(rows) -> str:
    body = []
    for r in rows:
        paper = (
            "/".join(f"{v * 100:.1f}" for v in r.paper_hit_ratios)
            if r.paper_hit_ratios
            else "-"
        )
        body.append(
            [
                r.program,
                *(f"{r.hit_ratios[s] * 100:.1f}%" for s in (1, 4, 16, 64)),
                _kb(r.buffer64_bytes),
                paper,
            ]
        )
    return "Table 5: hit ratios with limited LRU buffers\n" + _render(
        ["Program", "1-entry", "4-entry", "16-entry", "64-entry",
         "64-entry size", "paper(1/4/16/64 %)"],
        body,
    )


def render_speedups(rows, mean: float, opt_level: str, table_no: int) -> str:
    body = [
        [
            r.program,
            f"{r.original_s:.4f}",
            f"{r.transformed_s:.4f}",
            f"{r.speedup:.2f}",
            f"{r.paper_speedup:.2f}" if r.paper_speedup else "-",
        ]
        for r in rows
    ]
    body.append(["Harmonic Mean", "", "", f"{mean:.2f}", ""])
    return (
        f"Table {table_no}: performance improvement with {opt_level}\n"
        + _render(
            ["Program", "Original(s)", "CompReuse(s)", "Speedup", "paper"], body
        )
    )


def render_energy(rows, opt_level: str, table_no: int) -> str:
    body = [
        [
            r.program,
            f"{r.original_j:.3f}",
            f"{r.transformed_j:.3f}",
            f"{r.saving * 100:.1f}%",
            f"{r.paper_saving * 100:.1f}%" if r.paper_saving else "-",
        ]
        for r in rows
    ]
    return f"Table {table_no}: energy saving with {opt_level}\n" + _render(
        ["Program", "Original(J)", "CompReuse(J)", "Saving", "paper"], body
    )


def render_table10(rows, mean: float) -> str:
    body = [
        [
            r.program,
            r.input_source,
            f"{r.original_s:.4f}",
            f"{r.transformed_s:.4f}",
            f"{r.speedup:.2f}",
            f"{r.paper_speedup:.2f}" if r.paper_speedup else "-",
        ]
        for r in rows
    ]
    body.append(["Harmonic Mean", "", "", "", f"{mean:.2f}", ""])
    return "Table 10: performance improvement for different input files (O3)\n" + _render(
        ["Program", "Inputs", "Original(s)", "CompReuse(s)", "Speedup", "paper"],
        body,
    )


def render_reuse_stats(table_stats: dict, merged_members: Optional[dict] = None) -> str:
    """Per-table runtime telemetry, one row per segment.

    ``table_stats`` maps segment id -> :class:`TableStats`; for segments
    probing through a shared :class:`MergedReuseTable`, the row shows the
    *member* statistics and names the shared table (``merged_members``
    maps table id -> member segment ids), so merged tables keep
    per-member identity in reports.
    """
    group_of = {
        seg_id: table_id
        for table_id, members in (merged_members or {}).items()
        for seg_id in members
    }
    body = []
    for seg_id in sorted(table_stats):
        s = table_stats[seg_id]
        ratio = f"{s.hits / s.probes * 100:.1f}%" if s.probes else "-"
        body.append(
            [
                str(seg_id),
                str(s.probes),
                str(s.hits),
                ratio,
                str(s.collisions),
                str(s.empty_misses),
                str(s.evictions),
                str(s.occupancy_hwm),
                group_of.get(seg_id, "-"),
            ]
        )
    return "Reuse table telemetry\n" + _render(
        ["Segment", "Probes", "Hits", "HitRatio", "Collisions",
         "EmptyMiss", "Evictions", "OccHWM", "SharedTable"],
        body,
    )


def render_governor(governor: dict) -> str:
    """The online governor's per-segment verdicts after a governed run.

    ``governor`` maps segment id -> the snapshot dict produced by
    :meth:`repro.runtime.governor.SegmentGovernor.snapshot` (surfaced as
    ``Metrics.governor``): final state, disable/re-enable/resize/flush
    counters, and the full transition history.
    """
    if not governor:
        return "Governor: no governed tables installed"
    body = []
    transitions_out = []
    for seg_id in sorted(governor):
        snap = governor[seg_id]
        body.append(
            [
                str(seg_id),
                snap["state"],
                str(snap["probes_observed"]),
                str(snap["bypassed_executions"]),
                str(snap["disables"]),
                str(snap["reenables"]),
                str(snap["resizes"]),
                str(snap["flushes"]),
            ]
        )
        for t in snap["transitions"]:
            gain = f" gain={t['gain']:+.1f}" if "gain" in t else ""
            transitions_out.append(
                f"  segment {seg_id} @probe {t['probe']}: "
                f"{t['from']} -> {t['to']} ({t['reason']}{gain})"
            )
    out = "Governor state\n" + _render(
        ["Segment", "State", "Probes", "Bypassed",
         "Disables", "Reenables", "Resizes", "Flushes"],
        body,
    )
    if transitions_out:
        out += "\nTransitions\n" + "\n".join(transitions_out)
    else:
        out += "\nTransitions\n  (none: every table stayed profitable)"
    return out


_SPARK_BLOCKS = " .:-=+*#%@"


def _sparkline(values: Sequence[float], lo: Optional[float] = None,
               hi: Optional[float] = None) -> str:
    """One glyph per value, darker = higher.

    ``lo``/``hi`` pin the scale (ratios want 0..1); left as None they
    come from the series itself.  Two guarded edge cases: an empty
    series renders as the empty string, and a zero-range series (all
    samples equal, or a degenerate pinned scale) renders flat at
    mid-scale instead of dividing by the zero range.
    """
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    top = len(_SPARK_BLOCKS) - 1
    if span <= 0:
        return _SPARK_BLOCKS[top // 2] * len(values)
    return "".join(
        _SPARK_BLOCKS[min(top, max(0, int((v - lo) / span * top + 0.5)))]
        for v in values
    )


def render_hit_ratio_series(table_stats: dict) -> str:
    """The sampled hit-ratio time series of each table, as sparklines."""
    lines = ["Hit-ratio over time (sampled; one char per sample)"]
    for seg_id in sorted(table_stats):
        series = table_stats[seg_id].hit_ratio_series()
        if not series:
            lines.append(f"  segment {seg_id}: (no samples)")
            continue
        spark = _sparkline([ratio for _, ratio in series], lo=0.0, hi=1.0)
        final = series[-1][1]
        lines.append(f"  segment {seg_id}: |{spark}| final {final * 100:.1f}%")
    return "\n".join(lines)


def render_perf_history(rows: Sequence[dict]) -> str:
    """The cycle trend of one perf-store configuration, newest last.

    ``rows`` are :class:`~repro.obs.perfdb.PerfDB` rows of a single
    (workload, opt, variant); the sparkline is min-max normalized over
    the shown window (a flat line means no change)."""
    if not rows:
        return "Perf history: no recorded runs"
    key = f"{rows[0].get('workload')}@{rows[0].get('opt')}@{rows[0].get('variant')}"
    cycles = [row.get("cycles", 0) for row in rows]
    body = [
        [
            str(i),
            row.get("git", "-"),
            str(row.get("code_version", "-")),
            str(row.get("cycles", "-")),
            f"{row.get('output_checksum', 0):#010x}",
        ]
        for i, row in enumerate(rows)
    ]
    return (
        f"Perf history for {key} ({len(rows)} runs)\n"
        + _render(["Run", "Git", "Code", "Cycles", "Checksum"], body)
        + f"\ntrend |{_sparkline(cycles)}| latest {cycles[-1]}"
    )


def render_histogram(histogram: Histogram, width: int = 50) -> str:
    if not histogram.bins:
        return f"{histogram.title}\n(no data)"
    peak = max(count for _, count in histogram.bins) or 1
    label_w = max(len(label) for label, _ in histogram.bins)
    lines = [histogram.title]
    for label, count in histogram.bins:
        bar = "#" * max(0, round(count / peak * width))
        lines.append(f"{label.rjust(label_w)} |{bar} {count}")
    return "\n".join(lines)


def render_sweep(series: list[SweepSeries], opt_level: str, figure_no: int) -> str:
    sizes = [p[0] for p in series[0].points]
    headers = ["Program"] + [
        ("optimal" if s is None else _kb(s)) for s in sizes
    ]
    body = [
        [line.program] + [f"{speedup:.2f}" for _, speedup in line.points]
        for line in series
    ]
    return (
        f"Figure {figure_no}: speedups vs hash table size ({opt_level})\n"
        + _render(headers, body)
    )
