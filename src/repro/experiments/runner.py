"""Experiment runner: builds, transforms, and measures workloads.

The runner owns the expensive steps (the profiling pipeline runs once per
workload and is cached) and produces the measurements every table and
figure of the paper is derived from:

* original vs transformed execution at O0 and O3 (cycles -> simulated
  seconds at 206 MHz, energy in Joules);
* runs under alternate (non-profiled) inputs (Table 10);
* runs with capped hash-table sizes (figures 14/15);
* the profiling statistics themselves (Tables 3/4/5, histogram figures).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..minic.parser import parse_program
from ..minic.sema import analyze
from ..opt.pipeline import optimize
from ..reuse.pipeline import PipelineConfig, PipelineResult, ReusePipeline
from ..runtime.compiler import compile_program
from ..runtime.machine import Machine, Metrics
from ..workloads.base import Workload


@dataclass
class MeasuredRun:
    """One measured execution of one program variant."""

    seconds: float
    cycles: int
    energy_joules: float
    output_checksum: int

    @classmethod
    def from_machine(cls, machine: Machine) -> "MeasuredRun":
        return cls(
            seconds=machine.seconds,
            cycles=machine.cycles,
            energy_joules=machine.energy_joules,
            output_checksum=machine.output_checksum,
        )


@dataclass
class ComparisonRun:
    """Original vs transformed under one optimization level and input."""

    workload: str
    opt_level: str
    original: MeasuredRun
    transformed: MeasuredRun
    table_stats: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.original.seconds / self.transformed.seconds

    @property
    def energy_saving(self) -> float:
        return 1.0 - self.transformed.energy_joules / self.original.energy_joules

    @property
    def outputs_match(self) -> bool:
        return self.original.output_checksum == self.transformed.output_checksum


class ExperimentRunner:
    """Caches pipeline results and input streams per workload."""

    def __init__(self) -> None:
        self._pipelines: dict[str, PipelineResult] = {}
        self._inputs: dict[str, list] = {}
        self._alt_inputs: dict[str, list] = {}
        self._comparisons: dict[tuple, ComparisonRun] = {}
        self._originals: dict[tuple, MeasuredRun] = {}

    # -- cached artifacts ---------------------------------------------------

    def inputs(self, workload: Workload) -> list:
        if workload.name not in self._inputs:
            self._inputs[workload.name] = workload.default_inputs()
        return self._inputs[workload.name]

    def alternate_inputs(self, workload: Workload) -> list:
        if workload.name not in self._alt_inputs:
            self._alt_inputs[workload.name] = workload.alternate_inputs()
        return self._alt_inputs[workload.name]

    def pipeline(self, workload: Workload) -> PipelineResult:
        """Run (once) the full Figure-1 pipeline for the workload."""
        if workload.name not in self._pipelines:
            config = PipelineConfig(
                min_executions=workload.min_executions,
                memory_budget_bytes=workload.memory_budget_bytes,
            )
            result = ReusePipeline(workload.source, config).run(self.inputs(workload))
            self._pipelines[workload.name] = result
        return self._pipelines[workload.name]

    # -- measured executions ----------------------------------------------------

    def _run_original(
        self, workload: Workload, opt_level: str, inputs: Sequence
    ) -> MeasuredRun:
        program = analyze(parse_program(workload.source))
        optimize(program, opt_level)
        machine = Machine(opt_level)
        machine.set_inputs(list(inputs))
        compile_program(program, machine).run("main")
        return MeasuredRun.from_machine(machine)

    def _run_transformed(
        self,
        workload: Workload,
        opt_level: str,
        inputs: Sequence,
        capacity_override: Optional[dict] = None,
        max_table_bytes: Optional[int] = None,
    ) -> tuple[MeasuredRun, dict]:
        result = self.pipeline(workload)
        # optimize a private copy so the cached pipeline program stays O0
        program = copy.deepcopy(result.program)
        analyze(program)
        optimize(program, opt_level)
        machine = Machine(opt_level)
        machine.set_inputs(list(inputs))
        tables = self._build_tables(result, max_table_bytes)
        for seg_id, table in tables.items():
            machine.install_table(seg_id, table)
        compile_program(program, machine).run("main")
        stats = {seg_id: table.stats for seg_id, table in tables.items()}
        return MeasuredRun.from_machine(machine), stats

    @staticmethod
    def _build_tables(result: PipelineResult, max_table_bytes: Optional[int]):
        if max_table_bytes is None:
            return result.build_tables()
        # figures 14/15: cap every table at the given byte size
        from ..runtime.hashtable import MergedReuseTable, ReuseTable

        tables: dict[int, object] = {}
        merged_built: dict[str, MergedReuseTable] = {}
        for spec in result.table_specs:
            if spec.merged_group is not None:
                group = merged_built.get(spec.merged_group)
                if group is None:
                    members = result.merged[spec.merged_group]
                    bitvec = (len(members) + 31) // 32
                    entry_words = (
                        members[0].in_words
                        + bitvec
                        + sum(m.out_words for m in members)
                    )
                    capacity = max(1, max_table_bytes // (entry_words * 4))
                    group = MergedReuseTable(
                        spec.merged_group,
                        capacity=_pow2_floor(capacity),
                        in_words=members[0].in_words,
                        member_out_words={str(m.seg_id): m.out_words for m in members},
                    )
                    merged_built[spec.merged_group] = group
                tables[spec.segment_id] = group.view(str(spec.segment_id))
            else:
                entry_words = spec.in_words + spec.out_words
                capacity = max(1, max_table_bytes // (entry_words * 4))
                capacity = min(_pow2_floor(capacity), _pow2_ceil(spec.capacity))
                tables[spec.segment_id] = ReuseTable(
                    str(spec.segment_id),
                    capacity=capacity,
                    in_words=spec.in_words,
                    out_words=spec.out_words,
                )
        return tables

    def compare(
        self,
        workload: Workload,
        opt_level: str = "O0",
        alternate: bool = False,
        max_table_bytes: Optional[int] = None,
    ) -> ComparisonRun:
        """Measure original vs transformed under one configuration.

        Results are cached per configuration: Tables 8/9 reuse the very
        runs of Tables 6/7, and the size sweeps reuse original runs."""
        key = (workload.name, opt_level, alternate, max_table_bytes)
        if key in self._comparisons:
            return self._comparisons[key]
        inputs = (
            self.alternate_inputs(workload) if alternate else self.inputs(workload)
        )
        original_key = (workload.name, opt_level, alternate)
        original = self._originals.get(original_key)
        if original is None:
            original = self._run_original(workload, opt_level, inputs)
            self._originals[original_key] = original
        transformed, stats = self._run_transformed(
            workload, opt_level, inputs, max_table_bytes=max_table_bytes
        )
        run = ComparisonRun(
            workload=workload.name,
            opt_level=opt_level,
            original=original,
            transformed=transformed,
            table_stats=stats,
        )
        if not run.outputs_match:
            raise AssertionError(
                f"{workload.name}: transformed output diverged from original"
            )
        self._comparisons[key] = run
        return run

    # -- profiling-derived data -----------------------------------------------------

    def headline_segment(self, workload: Workload):
        """The selected segment with the largest total gain (the one the
        paper's Table 3 reports for each program)."""
        result = self.pipeline(workload)
        if not result.selected:
            raise ValueError(f"{workload.name}: nothing was transformed")
        return max(result.selected, key=lambda s: s.gain * max(1, s.executions))

    def headline_profile(self, workload: Workload):
        segment = self.headline_segment(workload)
        return self.pipeline(workload).profiles[segment.seg_id]


def _pow2_floor(n: int) -> int:
    p = 1
    while p * 2 <= n:
        p *= 2
    return p


def _pow2_ceil(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


def harmonic_mean(values: Sequence[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return len(values) / sum(1.0 / v for v in values)
