"""Experiment runner: builds, transforms, and measures workloads.

The runner owns the expensive steps (the profiling pipeline runs once per
workload and is cached) and produces the measurements every table and
figure of the paper is derived from:

* original vs transformed execution at O0 and O3 (cycles -> simulated
  seconds at 206 MHz, energy in Joules);
* runs under alternate (non-profiled) inputs (Table 10);
* runs with capped hash-table sizes (figures 14/15);
* the profiling statistics themselves (Tables 3/4/5, histogram figures).
"""

from __future__ import annotations

import copy
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Optional, Sequence

from ..minic.parser import parse_program
from ..minic.sema import analyze
from ..obs import Tracer, get_tracer, set_tracer
from ..opt.pipeline import optimize
from ..reuse.pipeline import PipelineConfig, PipelineResult, ReusePipeline
from ..runtime.compiler import compile_program
from ..runtime.machine import Machine
from ..workloads.base import Workload
from .cache import ExperimentCache, cache_key


@dataclass
class MeasuredRun:
    """One measured execution of one program variant."""

    seconds: float
    cycles: int
    energy_joules: float
    output_checksum: int

    @classmethod
    def from_machine(cls, machine: Machine) -> "MeasuredRun":
        return cls(
            seconds=machine.seconds,
            cycles=machine.cycles,
            energy_joules=machine.energy_joules,
            output_checksum=machine.output_checksum,
        )


@dataclass
class ComparisonRun:
    """Original vs transformed under one optimization level and input."""

    workload: str
    opt_level: str
    original: MeasuredRun
    transformed: MeasuredRun
    table_stats: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.original.seconds / self.transformed.seconds

    @property
    def energy_saving(self) -> float:
        return 1.0 - self.transformed.energy_joules / self.original.energy_joules

    @property
    def outputs_match(self) -> bool:
        return self.original.output_checksum == self.transformed.output_checksum


class ExperimentRunner:
    """Caches pipeline results and input streams per workload.

    ``cache`` is an optional :class:`~repro.experiments.cache.ExperimentCache`
    that persists pipeline results and measured runs to disk across
    processes and invocations; without it, caching is in-memory only.
    ``fuse`` selects block-fused cost accounting for the measured machines
    (metrics are bit-identical either way; the flag exists for the
    differential harness).
    """

    def __init__(
        self, cache: Optional[ExperimentCache] = None, fuse: bool = True
    ) -> None:
        self._cache = cache
        self._fuse = fuse
        self._pipelines: dict[str, PipelineResult] = {}
        self._inputs: dict[str, list] = {}
        self._alt_inputs: dict[str, list] = {}
        self._comparisons: dict[tuple, ComparisonRun] = {}
        self._originals: dict[tuple, MeasuredRun] = {}
        # analyzed+optimized transformed program per (workload, opt_level):
        # measuring under several inputs / table caps must not re-deepcopy
        # and re-optimize the pipeline's program every run
        self._transformed_programs: dict[tuple[str, str], object] = {}

    # -- cached artifacts ---------------------------------------------------

    def inputs(self, workload: Workload) -> list:
        if workload.name not in self._inputs:
            self._inputs[workload.name] = workload.default_inputs()
        return self._inputs[workload.name]

    def alternate_inputs(self, workload: Workload) -> list:
        if workload.name not in self._alt_inputs:
            self._alt_inputs[workload.name] = workload.alternate_inputs()
        return self._alt_inputs[workload.name]

    def _pipeline_config(self, workload: Workload) -> PipelineConfig:
        return PipelineConfig(
            min_executions=workload.min_executions,
            memory_budget_bytes=workload.memory_budget_bytes,
        )

    def pipeline(self, workload: Workload) -> PipelineResult:
        """Run (once) the full Figure-1 pipeline for the workload."""
        if workload.name not in self._pipelines:
            config = self._pipeline_config(workload)
            inputs = self.inputs(workload)
            key = None
            if self._cache is not None:
                key = cache_key("pipeline", workload.source, asdict(config), inputs)
                cached = self._cache.load_pipeline(key)
                if cached is not None:
                    self._pipelines[workload.name] = cached
                    return cached
            result = ReusePipeline(workload.source, config).run(inputs)
            if self._cache is not None:
                self._cache.store_pipeline(key, result)
            self._pipelines[workload.name] = result
        return self._pipelines[workload.name]

    # -- measured executions ----------------------------------------------------

    def _run_original(
        self, workload: Workload, opt_level: str, inputs: Sequence
    ) -> MeasuredRun:
        key = None
        if self._cache is not None:
            key = cache_key(
                "run-original", workload.source, opt_level, self._fuse, inputs
            )
            cached = self._cache.load_run(key)
            if cached is not None:
                return cached[0]
        program = analyze(parse_program(workload.source))
        optimize(program, opt_level)
        machine = Machine(opt_level, fuse=self._fuse)
        machine.set_inputs(list(inputs))
        with get_tracer().span(
            "run.original",
            category="experiment",
            machine=machine,
            workload=workload.name,
            opt=opt_level,
        ):
            compile_program(program, machine).run("main")
        run = MeasuredRun.from_machine(machine)
        if self._cache is not None:
            self._cache.store_run(key, run)
        return run

    def _transformed_program(self, workload: Workload, opt_level: str):
        """The pipeline's transformed program, analyzed and optimized for
        ``opt_level`` — computed once per (workload, opt_level)."""
        memo_key = (workload.name, opt_level)
        program = self._transformed_programs.get(memo_key)
        if program is None:
            # optimize a private copy so the cached pipeline program stays O0
            program = copy.deepcopy(self.pipeline(workload).program)
            analyze(program)
            optimize(program, opt_level)
            self._transformed_programs[memo_key] = program
        return program

    def _run_transformed(
        self,
        workload: Workload,
        opt_level: str,
        inputs: Sequence,
        capacity_override: Optional[dict] = None,
        max_table_bytes: Optional[int] = None,
    ) -> tuple[MeasuredRun, dict]:
        key = None
        if self._cache is not None:
            key = cache_key(
                "run-transformed",
                workload.source,
                asdict(self._pipeline_config(workload)),
                opt_level,
                self._fuse,
                capacity_override,
                max_table_bytes,
                inputs,
            )
            cached = self._cache.load_run(key)
            if cached is not None and cached[1] is not None:
                return cached
        result = self.pipeline(workload)
        program = self._transformed_program(workload, opt_level)
        machine = Machine(opt_level, fuse=self._fuse)
        machine.set_inputs(list(inputs))
        tables = self._build_tables(result, max_table_bytes)
        for seg_id, table in tables.items():
            machine.install_table(seg_id, table)
        with get_tracer().span(
            "run.transformed",
            category="experiment",
            machine=machine,
            workload=workload.name,
            opt=opt_level,
            tables=len(tables),
        ):
            compile_program(program, machine).run("main")
        stats = {seg_id: table.stats for seg_id, table in tables.items()}
        run = MeasuredRun.from_machine(machine)
        if self._cache is not None:
            self._cache.store_run(key, run, stats)
        return run, stats

    @staticmethod
    def _build_tables(result: PipelineResult, max_table_bytes: Optional[int]):
        if max_table_bytes is None:
            return result.build_tables()
        # figures 14/15: cap every table at the given byte size
        from ..runtime.hashtable import (
            MergedReuseTable,
            ReuseTable,
            pow2_ceil,
            pow2_floor,
        )

        tables: dict[int, object] = {}
        merged_built: dict[str, MergedReuseTable] = {}
        for spec in result.table_specs:
            if spec.merged_group is not None:
                group = merged_built.get(spec.merged_group)
                if group is None:
                    members = result.merged[spec.merged_group]
                    bitvec = (len(members) + 31) // 32
                    entry_words = (
                        members[0].in_words
                        + bitvec
                        + sum(m.out_words for m in members)
                    )
                    capacity = max(1, max_table_bytes // (entry_words * 4))
                    group = MergedReuseTable(
                        spec.merged_group,
                        capacity=pow2_floor(capacity),
                        in_words=members[0].in_words,
                        member_out_words={str(m.seg_id): m.out_words for m in members},
                    )
                    merged_built[spec.merged_group] = group
                tables[spec.segment_id] = group.view(str(spec.segment_id))
            else:
                entry_words = spec.in_words + spec.out_words
                capacity = max(1, max_table_bytes // (entry_words * 4))
                capacity = min(pow2_floor(capacity), pow2_ceil(spec.capacity))
                tables[spec.segment_id] = ReuseTable(
                    str(spec.segment_id),
                    capacity=capacity,
                    in_words=spec.in_words,
                    out_words=spec.out_words,
                )
        return tables

    def compare(
        self,
        workload: Workload,
        opt_level: str = "O0",
        alternate: bool = False,
        max_table_bytes: Optional[int] = None,
    ) -> ComparisonRun:
        """Measure original vs transformed under one configuration.

        Results are cached per configuration: Tables 8/9 reuse the very
        runs of Tables 6/7, and the size sweeps reuse original runs."""
        key = (workload.name, opt_level, alternate, max_table_bytes)
        if key in self._comparisons:
            return self._comparisons[key]
        with get_tracer().span(
            "experiment.compare",
            category="experiment",
            workload=workload.name,
            opt=opt_level,
            alternate=alternate,
            max_table_bytes=max_table_bytes if max_table_bytes is not None else -1,
        ):
            inputs = (
                self.alternate_inputs(workload) if alternate else self.inputs(workload)
            )
            original_key = (workload.name, opt_level, alternate)
            original = self._originals.get(original_key)
            if original is None:
                original = self._run_original(workload, opt_level, inputs)
                self._originals[original_key] = original
            transformed, stats = self._run_transformed(
                workload, opt_level, inputs, max_table_bytes=max_table_bytes
            )
        run = ComparisonRun(
            workload=workload.name,
            opt_level=opt_level,
            original=original,
            transformed=transformed,
            table_stats=stats,
        )
        if not run.outputs_match:
            raise AssertionError(
                f"{workload.name}: transformed output diverged from original"
            )
        self._comparisons[key] = run
        return run

    # -- parallel fan-out ---------------------------------------------------

    @staticmethod
    def _normalize_config(config) -> tuple[str, str, bool, Optional[int]]:
        """Normalize a compare_many item to picklable plain data.

        Accepts a ``(workload, opt_level, alternate, max_table_bytes)``
        tuple with trailing fields optional; ``workload`` may be a
        :class:`Workload` or a registry name.
        """
        if isinstance(config, (Workload, str)):
            config = (config,)
        workload, *rest = config
        name = workload.name if isinstance(workload, Workload) else workload
        opt_level = rest[0] if len(rest) > 0 else "O0"
        alternate = bool(rest[1]) if len(rest) > 1 else False
        max_table_bytes = rest[2] if len(rest) > 2 else None
        return (name, opt_level, alternate, max_table_bytes)

    def compare_many(
        self, configs: Sequence, max_workers: Optional[int] = None
    ) -> list[ComparisonRun]:
        """Measure many independent configurations across a process pool.

        ``configs`` items are ``(workload, opt_level, alternate,
        max_table_bytes)`` with trailing fields optional (workloads may be
        given by registry name).  The benchmark grid is embarrassingly
        parallel: configurations are grouped by workload (so each worker
        pays the profiling pipeline at most once) and fanned across
        ``ProcessPoolExecutor`` workers.  Results come back in input
        order and are absorbed into this runner's in-memory memo; with a
        disk cache attached, workers also persist every artifact for
        later runs.  ``max_workers=1`` runs serially in-process (useful
        under debuggers and in tests).

        When tracing is enabled, every worker traces into its own
        :class:`~repro.obs.Tracer`, ships the spans back as plain data,
        and the coordinator re-parents them under its ``compare_many``
        span — one timeline across the whole pool.
        """
        tracer = get_tracer()
        normalized = [self._normalize_config(c) for c in configs]
        groups: dict[str, list[int]] = {}
        for idx, cfg in enumerate(normalized):
            groups.setdefault(cfg[0], []).append(idx)
        cache_root = str(self._cache.root) if self._cache is not None else None
        tasks = [
            ([normalized[i] for i in indices], cache_root, self._fuse, tracer.enabled)
            for indices in groups.values()
        ]
        results: list[Optional[ComparisonRun]] = [None] * len(normalized)
        with tracer.span(
            "experiment.compare_many",
            category="experiment",
            configs=len(normalized),
            tasks=len(tasks),
        ) as parent:
            if max_workers == 1 or len(tasks) <= 1:
                task_results = [_compare_worker(t) for t in tasks]
            else:
                pool = ProcessPoolExecutor(max_workers=max_workers)
                try:
                    task_results = list(pool.map(_compare_worker, tasks))
                finally:
                    pool.shutdown()
            for indices, (runs, payload) in zip(groups.values(), task_results):
                tracer.absorb(payload, parent)
                for idx, run in zip(indices, runs):
                    results[idx] = run
                    name, opt_level, alternate, max_table_bytes = normalized[idx]
                    self._comparisons[(name, opt_level, alternate, max_table_bytes)] = run
        return results  # type: ignore[return-value]

    # -- profiling-derived data -----------------------------------------------------

    def headline_segment(self, workload: Workload):
        """The selected segment with the largest total gain (the one the
        paper's Table 3 reports for each program)."""
        result = self.pipeline(workload)
        if not result.selected:
            raise ValueError(f"{workload.name}: nothing was transformed")
        return max(result.selected, key=lambda s: s.gain * max(1, s.executions))

    def headline_profile(self, workload: Workload):
        segment = self.headline_segment(workload)
        return self.pipeline(workload).profiles[segment.seg_id]


def _compare_worker(task) -> tuple[list[ComparisonRun], Optional[dict]]:
    """Process-pool entry point: measure one workload's configurations.

    Takes plain data only (workload *names*, a cache root path, the trace
    flag) because :class:`Workload` holds callables that do not pickle
    portably.  Returns the runs plus, when tracing, the worker's
    serialized spans for the coordinator to absorb.  The worker always
    traces into a private tracer (restoring the previous one on exit) so
    the serial in-process path never double-records into the
    coordinator's tracer.
    """
    configs, cache_root, fuse, trace_enabled = task
    from ..workloads.registry import get_workload

    worker_tracer = Tracer(enabled=trace_enabled)
    previous = set_tracer(worker_tracer)
    try:
        cache = ExperimentCache(cache_root) if cache_root is not None else None
        runner = ExperimentRunner(cache=cache, fuse=fuse)
        runs = [
            runner.compare(
                get_workload(name),
                opt_level,
                alternate=alternate,
                max_table_bytes=max_table_bytes,
            )
            for name, opt_level, alternate, max_table_bytes in configs
        ]
    finally:
        set_tracer(previous)
    return runs, worker_tracer.serialize() if trace_enabled else None


def harmonic_mean(values: Sequence[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return len(values) / sum(1.0 / v for v in values)
