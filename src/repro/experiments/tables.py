"""Builders for every table of the paper's evaluation (Tables 3-10).

Each function returns a list of row dataclasses/dicts plus aggregate
values; :mod:`repro.experiments.report` renders them as text.  Column
meanings follow the paper exactly; values come from our simulated
platform, with the paper's numbers carried alongside for the shape
comparison in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..profiling.valueset import LRU_SIZES
from ..runtime.costs import CLOCK_HZ
from ..workloads.base import Workload
from ..workloads.registry import ALL_WORKLOADS, PRIMARY_WORKLOADS
from .runner import ExperimentRunner, harmonic_mean


def _us(cycles: float) -> float:
    return cycles / CLOCK_HZ * 1e6


# -- Table 3: factors affecting the optimization decision --------------------


@dataclass
class Table3Row:
    program: str
    computation_us: float  # C, measured granularity per execution
    overhead_us: float  # O
    distinct_inputs: int  # DIP#
    reuse_rate: float  # R
    table_bytes: int
    paper_computation_us: float
    paper_overhead_us: float
    paper_distinct_inputs: int
    paper_reuse_rate: float
    paper_table_bytes: int


def table3(runner: ExperimentRunner, workloads: Optional[list[Workload]] = None):
    rows = []
    for workload in workloads or PRIMARY_WORKLOADS:
        segment = runner.headline_segment(workload)
        result = runner.pipeline(workload)
        table_bytes = result.total_table_bytes()
        rows.append(
            Table3Row(
                program=workload.name,
                computation_us=_us(segment.measured_granularity),
                overhead_us=_us(segment.overhead),
                distinct_inputs=segment.distinct_inputs,
                reuse_rate=segment.reuse_rate,
                table_bytes=table_bytes,
                paper_computation_us=workload.paper.granularity_us,
                paper_overhead_us=workload.paper.overhead_us,
                paper_distinct_inputs=workload.paper.distinct_inputs,
                paper_reuse_rate=workload.paper.reuse_rate,
                paper_table_bytes=workload.paper.table_bytes,
            )
        )
    return rows


# -- Table 4: number of code segments ------------------------------------------


@dataclass
class Table4Row:
    program: str
    functions: str
    analyzed: int
    profiled: int
    transformed: int
    code_lines: int
    paper_analyzed: int
    paper_profiled: int
    paper_transformed: int


def table4(runner: ExperimentRunner, workloads: Optional[list[Workload]] = None):
    rows = []
    for workload in workloads or PRIMARY_WORKLOADS:
        result = runner.pipeline(workload)
        counts = result.counts
        functions = ", ".join(sorted({s.func_name for s in result.selected}))
        code_lines = sum(1 for line in workload.source.splitlines() if line.strip())
        rows.append(
            Table4Row(
                program=workload.name,
                functions=functions or workload.key_function,
                analyzed=counts["analyzed"],
                profiled=counts["profiled"],
                transformed=counts["transformed"],
                code_lines=code_lines,
                paper_analyzed=workload.paper.analyzed_cs,
                paper_profiled=workload.paper.profiled_cs,
                paper_transformed=workload.paper.transformed_cs,
            )
        )
    return rows


# -- Table 5: hit ratios with limited buffers ------------------------------------


@dataclass
class Table5Row:
    program: str
    hit_ratios: dict  # {1: r, 4: r, 16: r, 64: r}
    buffer64_bytes: int
    paper_hit_ratios: tuple


def table5(runner: ExperimentRunner, workloads: Optional[list[Workload]] = None):
    rows = []
    for workload in workloads or PRIMARY_WORKLOADS:
        profile = runner.headline_profile(workload)
        segment = runner.headline_segment(workload)
        entry_words = segment.in_words + segment.out_words
        rows.append(
            Table5Row(
                program=workload.name,
                hit_ratios={size: profile.lru_hit_ratio(size) for size in LRU_SIZES},
                buffer64_bytes=64 * entry_words * 4,
                paper_hit_ratios=workload.paper.lru_hits,
            )
        )
    return rows


# -- Tables 6/7: performance improvement -------------------------------------------


@dataclass
class SpeedupRow:
    program: str
    original_s: float
    transformed_s: float
    speedup: float
    paper_speedup: float
    in_mean: bool  # variants excluded from the harmonic mean


def speedup_table(
    runner: ExperimentRunner,
    opt_level: str,
    workloads: Optional[list[Workload]] = None,
):
    """Table 6 (O0) / Table 7 (O3)."""
    rows = []
    for workload in workloads or ALL_WORKLOADS:
        run = runner.compare(workload, opt_level=opt_level)
        paper = (
            workload.paper.speedup_o0 if opt_level == "O0" else workload.paper.speedup_o3
        )
        rows.append(
            SpeedupRow(
                program=workload.name,
                original_s=run.original.seconds,
                transformed_s=run.transformed.seconds,
                speedup=run.speedup,
                paper_speedup=paper,
                in_mean=not workload.is_variant,
            )
        )
    mean = harmonic_mean([r.speedup for r in rows if r.in_mean])
    return rows, mean


def table6(runner: ExperimentRunner, workloads=None):
    return speedup_table(runner, "O0", workloads)


def table7(runner: ExperimentRunner, workloads=None):
    return speedup_table(runner, "O3", workloads)


# -- Tables 8/9: energy saving ---------------------------------------------------------


@dataclass
class EnergyRow:
    program: str
    original_j: float
    transformed_j: float
    saving: float
    paper_saving: float


def energy_table(
    runner: ExperimentRunner,
    opt_level: str,
    workloads: Optional[list[Workload]] = None,
):
    """Table 8 (O0) / Table 9 (O3); primary programs only, as in the paper."""
    rows = []
    for workload in workloads or PRIMARY_WORKLOADS:
        run = runner.compare(workload, opt_level=opt_level)
        paper = (
            workload.paper.energy_saving_o0
            if opt_level == "O0"
            else workload.paper.energy_saving_o3
        )
        rows.append(
            EnergyRow(
                program=workload.name,
                original_j=run.original.energy_joules,
                transformed_j=run.transformed.energy_joules,
                saving=run.energy_saving,
                paper_saving=paper,
            )
        )
    return rows


def table8(runner: ExperimentRunner, workloads=None):
    return energy_table(runner, "O0", workloads)


def table9(runner: ExperimentRunner, workloads=None):
    return energy_table(runner, "O3", workloads)


# -- Table 10: different input files ------------------------------------------------------


@dataclass
class Table10Row:
    program: str
    input_source: str
    original_s: float
    transformed_s: float
    speedup: float
    paper_speedup: float


def table10(runner: ExperimentRunner, workloads: Optional[list[Workload]] = None):
    """Transformed with default-input profiling, measured on alternate
    inputs, at O3 (as in the paper)."""
    rows = []
    for workload in workloads or PRIMARY_WORKLOADS:
        run = runner.compare(workload, opt_level="O3", alternate=True)
        rows.append(
            Table10Row(
                program=workload.name,
                input_source=workload.alternate_label,
                original_s=run.original.seconds,
                transformed_s=run.transformed.seconds,
                speedup=run.speedup,
                paper_speedup=workload.paper.speedup_alternate,
            )
        )
    mean = harmonic_mean([r.speedup for r in rows])
    return rows, mean
