"""Builders for the paper's data figures.

* Figures 5/6 — histograms of quan input values (G721 encode/decode);
* Figures 7/8 — histograms of accessed hash-table entries (G721);
* Figure 11 — access counts of RASTA's distinct input patterns;
* Figure 12 — histogram of UNEPIC input values;
* Figure 13 — histogram of GNU Go input patterns;
* Figures 14/15 — speedup vs hash-table size at O0 / O3.

Histogram data comes straight from the value-set profiles; the
"accessed entry" figures map each distinct key through the same Jenkins
hash + modulo the deployed table uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..runtime.jenkins import hash_key_words
from ..runtime.values import wrap32
from ..workloads.base import Workload
from ..workloads.registry import PRIMARY_WORKLOADS, get_workload
from .runner import ExperimentRunner

# Per-table byte budgets swept in figures 14/15 (the paper's x axis runs
# from 1KB to the per-program optimal size).
SWEEP_SIZES = (1024, 4096, 16384, 65536, 262144, None)  # None = optimal


@dataclass
class Histogram:
    """A binned histogram: (bin label, count) pairs in bin order."""

    title: str
    bins: list[tuple[str, int]]

    @property
    def total(self) -> int:
        return sum(count for _, count in self.bins)


def input_value_histogram(
    runner: ExperimentRunner, workload: Workload, n_bins: int = 24
) -> Histogram:
    """Figures 5/6/12: distribution of the (single-word) input values."""
    profile = runner.headline_profile(workload)
    values = []
    for key, count in profile.value_counts.items():
        values.append((wrap32(key[0]), count))
    if not values:
        return Histogram(title=f"{workload.name}: input values", bins=[])
    lo = min(v for v, _ in values)
    hi = max(v for v, _ in values)
    width = max(1, (hi - lo + n_bins) // n_bins)
    counts = [0] * n_bins
    for value, count in values:
        idx = min(n_bins - 1, (value - lo) // width)
        counts[idx] += count
    bins = [
        (f"{lo + i * width}..{lo + (i + 1) * width - 1}", counts[i])
        for i in range(n_bins)
    ]
    return Histogram(title=f"{workload.name}: histogram of input values", bins=bins)


def accessed_entry_histogram(
    runner: ExperimentRunner, workload: Workload, n_bins: int = 24
) -> Histogram:
    """Figures 7/8: which hash-table entries the accesses land on."""
    profile = runner.headline_profile(workload)
    segment = runner.headline_segment(workload)
    result = runner.pipeline(workload)
    spec = next(s for s in result.table_specs if s.segment_id == segment.seg_id)
    capacity = 1
    while capacity < spec.capacity:
        capacity <<= 1
    mask = capacity - 1
    counts_by_entry: dict[int, int] = {}
    for key, count in profile.value_counts.items():
        entry = hash_key_words(key) & mask
        counts_by_entry[entry] = counts_by_entry.get(entry, 0) + count
    width = max(1, capacity // n_bins)
    counts = [0] * n_bins
    for entry, count in counts_by_entry.items():
        counts[min(n_bins - 1, entry // width)] += count
    bins = [
        (f"{i * width}..{(i + 1) * width - 1}", counts[i]) for i in range(n_bins)
    ]
    return Histogram(
        title=f"{workload.name}: histogram of accessed table entries", bins=bins
    )


def pattern_access_histogram(
    runner: ExperimentRunner, workload: Workload, max_patterns: int = 40
) -> Histogram:
    """Figures 11/13: access counts per distinct input pattern, most
    frequent first (the paper plots one bar per pattern)."""
    profile = runner.headline_profile(workload)
    pairs = profile.value_counts.most_common(max_patterns)
    bins = [(str(tuple(wrap32(w) for w in key)), count) for key, count in pairs]
    return Histogram(
        title=f"{workload.name}: accesses per distinct input pattern", bins=bins
    )


def figure5(runner):  # G721_encode input values
    return input_value_histogram(runner, get_workload("G721_encode"))


def figure6(runner):  # G721_decode input values
    return input_value_histogram(runner, get_workload("G721_decode"))


def figure7(runner):  # G721_encode accessed entries
    return accessed_entry_histogram(runner, get_workload("G721_encode"))


def figure8(runner):  # G721_decode accessed entries
    return accessed_entry_histogram(runner, get_workload("G721_decode"))


def figure11(runner):  # RASTA distinct input patterns
    return pattern_access_histogram(runner, get_workload("RASTA"))


def figure12(runner):  # UNEPIC input values
    return input_value_histogram(runner, get_workload("UNEPIC"))


def figure13(runner):  # GNU Go input patterns
    return pattern_access_histogram(runner, get_workload("GNUGO"))


# -- Figures 14/15: speedup vs hash table size -------------------------------------


@dataclass
class SweepSeries:
    program: str
    points: list[tuple[Optional[int], float]]  # (bytes or None=optimal, speedup)


def size_sweep(
    runner: ExperimentRunner,
    opt_level: str,
    workloads: Optional[list[Workload]] = None,
    sizes: tuple = SWEEP_SIZES,
) -> list[SweepSeries]:
    series = []
    for workload in workloads or PRIMARY_WORKLOADS:
        points = []
        for size in sizes:
            run = runner.compare(workload, opt_level=opt_level, max_table_bytes=size)
            points.append((size, run.speedup))
        series.append(SweepSeries(program=workload.name, points=points))
    return series


def figure14(runner, workloads=None, sizes: tuple = SWEEP_SIZES):
    return size_sweep(runner, "O0", workloads, sizes)


def figure15(runner, workloads=None, sizes: tuple = SWEEP_SIZES):
    return size_sweep(runner, "O3", workloads, sizes)
