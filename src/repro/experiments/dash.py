"""Collector behind ``repro dash``: measure, aggregate, render to HTML.

:mod:`repro.obs.dash` is the pure renderer; this module produces its
input.  One shared :class:`~repro.obs.metrics.MetricsRegistry` rides
along through every :func:`~repro.experiments.perf.measure_workload`
call, so the embedded OpenMetrics exposition aggregates the whole
dashboard build (per-segment probe counters sum across workloads); the
perf store supplies the trend history and the anomaly detector judges
each fresh measurement against it.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from .. import api
from ..obs.anomaly import AnomalyPolicy, detect_row_anomalies
from ..obs.annotate import build_annotation, render_fragment
from ..obs.dash import DashData, WorkloadPanel, render_dashboard
from ..obs.metrics import MetricsRegistry
from ..obs.perfdb import PerfDB, baseline_key
from ..obs.render import (
    render_hit_ratio_series,
    render_perf_history,
    render_service_bench,
    render_session_latency,
    render_slowest_requests,
)
from ..workloads import get_workload
from .adaptive import workload_config
from .perf import measure_workload
from .report import render_governor, render_reuse_stats

__all__ = ["collect_dashboard", "write_dashboard"]

# histogram layout mirrors api.Session so both feeds aggregate into one family
_RUN_SECONDS_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0)


def _annotate_fragment(name: str, opt: str) -> str:
    """Both backends' annotated-source HTML for one workload@opt.

    Line mode is a separate pair of runs (marks disable fusion in the
    closure backend, so the measured panel keeps its own run untouched);
    the fragment gets a per-panel uid so several panels' backend
    selectors coexist on one page."""
    workload = get_workload(name)
    annotations = []
    for backend in ("closures", "vm"):
        program = api.compile(
            workload.source,
            api.CompileOptions(
                opt=opt,
                config=workload_config(workload),
                profile="lines",
                backend=backend,
            ),
        )
        inputs = workload.default_inputs()
        program.profile(inputs)
        result = program.run(inputs)
        annotations.append(
            build_annotation(
                workload.source,
                result.profile(),
                result.source_map,
                title=f"{name}@{opt}",
            )
        )
    return render_fragment(annotations, uid=f"{name}-{opt}")


def _panel(
    name: str,
    opt: str,
    variant: str,
    registry: MetricsRegistry,
    db: Optional[PerfDB],
    policy: AnomalyPolicy,
) -> WorkloadPanel:
    history = db.rows(name, opt, variant) if db is not None else []
    started = time.perf_counter()
    row, result = measure_workload(name, opt, variant, metrics=registry)
    registry.histogram(
        "repro_session_run_seconds",
        "Per-run wall-clock seconds.",
        buckets=_RUN_SECONDS_BUCKETS,
    ).observe(time.perf_counter() - started)
    anomalies = detect_row_anomalies(history, row, policy) if history else []
    profile = result.profile()
    metrics = result.metrics
    ledger_text = result.ledger.render() if result.ledger is not None else ""
    return WorkloadPanel(
        key=baseline_key(name, opt, variant),
        cycles=metrics.cycles,
        seconds=metrics.seconds,
        energy_joules=metrics.energy_joules,
        output_checksum=metrics.output_checksum,
        table_text=render_reuse_stats(metrics.table_stats) if metrics.table_stats else "",
        hit_ratio_text=(
            render_hit_ratio_series(metrics.table_stats) if metrics.table_stats else ""
        ),
        governor_text=render_governor(metrics.governor) if metrics.governor else "",
        ledger_text=ledger_text,
        measured_vs_ledger=profile.measured_vs_ledger(),
        profile_text=profile.render(max_depth=4),
        history_text=render_perf_history(history + [row]) if history else "",
        annotate_html=_annotate_fragment(name, opt) if variant == "static" else "",
        anomalies=[a.describe() for a in anomalies],
    )


def collect_dashboard(
    workloads: Sequence[str],
    opts: Sequence[str] = ("O0",),
    variants: Sequence[str] = ("static",),
    db: Optional[PerfDB] = None,
    policy: Optional[AnomalyPolicy] = None,
    title: str = "repro dashboard",
    generated: str = "",
    service_bench: Optional[dict] = None,
) -> DashData:
    """Measure every (workload, opt, variant) combination and assemble
    the :class:`~repro.obs.dash.DashData` for rendering.

    ``generated`` is caller-supplied timestamp text (kept out of this
    module so the collector stays deterministic and testable);
    ``service_bench`` is an optional parsed ``BENCH_service.json``
    report to embed as the service load-test block."""
    policy = policy or AnomalyPolicy()
    registry = MetricsRegistry()
    panels = [
        _panel(name, opt, variant, registry, db, policy)
        for name in workloads
        for opt in opts
        for variant in variants
    ]
    tracing = (service_bench or {}).get("tracing")
    return DashData(
        title=title,
        generated=generated,
        metrics_text=registry.render_openmetrics(),
        session_text=render_session_latency(registry.snapshot()),
        service_text=render_service_bench(service_bench) if service_bench else "",
        slowest_text=render_slowest_requests(tracing) if tracing else "",
        panels=panels,
    )


def write_dashboard(
    path: str,
    workloads: Sequence[str],
    opts: Sequence[str] = ("O0",),
    variants: Sequence[str] = ("static",),
    db: Optional[PerfDB] = None,
    policy: Optional[AnomalyPolicy] = None,
    title: str = "repro dashboard",
    generated: str = "",
    service_bench: Optional[dict] = None,
) -> str:
    """Collect and write the dashboard HTML; returns ``path``."""
    data = collect_dashboard(
        workloads,
        opts=opts,
        variants=variants,
        db=db,
        policy=policy,
        title=title,
        generated=generated,
        service_bench=service_bench,
    )
    with open(path, "w", encoding="utf-8") as f:
        f.write(render_dashboard(data))
    return path
