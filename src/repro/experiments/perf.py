"""Measurement harness behind ``repro perf record|report|check``.

:mod:`repro.obs.perfdb` is pure storage and comparison; this module does
the measuring: it runs a registered workload through the facade with the
cycle-attribution profiler attached and condenses the outcome into one
perf-store row.  A row carries everything needed to explain a regression
after the fact — cycles, checksum, per-segment attribution summary, hit
ratios, governor transition counts — keyed by (workload, opt, variant,
code version, git revision).

The gate (:func:`check_workloads`) measures the configurations named by
a committed baseline (optionally restricted to a workload subset) and
compares cycles and checksums; the simulator is deterministic, so the
default tolerance is zero and any drift is a real behavior change.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .. import api
from ..obs.anomaly import Anomaly, AnomalyPolicy, detect_row_anomalies
from ..obs.perfdb import PerfDB, Regression, check_rows, git_revision, load_baseline
from ..obs.profiler import CycleProfile
from ..workloads import get_workload
from .adaptive import workload_config
from .cache import CODE_VERSION

# "static"/"governed" run the closure backend; "vm" is static tables on
# the register-bytecode backend — same cycles and checksum by the VM
# differential, so the gate catches either backend drifting.
VARIANTS = ("static", "governed", "vm")


def measure_workload(
    name: str, opt: str = "O0", variant: str = "static", metrics=None
) -> tuple[dict, api.RunResult]:
    """One profiled measured run of a registered workload.

    Returns ``(perf row, RunResult)``; the result's
    :meth:`~repro.api.RunResult.profile` holds the full attribution tree
    for reports, the row its condensed summary for the store.  Pass a
    :class:`~repro.obs.metrics.MetricsRegistry` as ``metrics`` to
    aggregate runtime counters across measurements (the dashboard does).
    """
    if variant not in VARIANTS:
        raise api.ConfigError(
            f"unknown variant {variant!r}; choose from {VARIANTS}"
        )
    workload = get_workload(name)
    program = api.compile(
        workload.source,
        api.CompileOptions(
            opt=opt,
            config=workload_config(workload),
            governed=variant == "governed",
            profile=True,
            backend="vm" if variant == "vm" else None,
        ),
        metrics=metrics,
    )
    inputs = workload.default_inputs()
    program.profile(inputs)
    result = program.run(inputs)
    return _build_row(name, opt, variant, result), result


def _build_row(name: str, opt: str, variant: str, result: api.RunResult) -> dict:
    metrics = result.metrics
    profile = result.profile()
    segments = profile.segments()
    return {
        "workload": name,
        "opt": opt,
        "variant": variant,
        "code_version": CODE_VERSION,
        "git": git_revision(),
        "cycles": metrics.cycles,
        "seconds": metrics.seconds,
        "energy_joules": metrics.energy_joules,
        "output_checksum": metrics.output_checksum,
        "output_count": metrics.output_count,
        "hit_ratios": {
            str(seg_id): stats.hit_ratio
            for seg_id, stats in sorted(metrics.table_stats.items())
        },
        "governor_transitions": {
            str(seg_id): len(snap["transitions"])
            for seg_id, snap in sorted(metrics.governor.items())
        },
        "segments": {
            str(seg_id): {
                "executions": att.executions,
                "hits": att.hits,
                "misses": att.misses,
                "bypassed": att.bypassed,
                "body_cycles": att.body_cycles,
                "overhead_cycles": att.overhead_cycles,
                "measured_gain": att.measured_gain,
            }
            for seg_id, att in sorted(segments.items())
        },
    }


def record_workloads(
    names: Sequence[str],
    opts: Sequence[str] = ("O0",),
    variants: Sequence[str] = ("static",),
    db: Optional[PerfDB] = None,
) -> list[dict]:
    """Measure every (workload, opt, variant) combination and append the
    rows to the store (when one is given).  Returns the rows."""
    rows = []
    for name in names:
        for opt in opts:
            for variant in variants:
                row, _ = measure_workload(name, opt, variant)
                if db is not None:
                    row = db.append(row)
                rows.append(row)
    return rows


def check_workloads(
    baseline_path: str,
    workloads: Optional[Sequence[str]] = None,
    db: Optional[PerfDB] = None,
) -> tuple[list[Regression], list[dict]]:
    """Measure the baseline's configurations and compare.

    ``workloads`` restricts the gate to a subset (CI measures two
    representative ones); unmeasured baseline rows are skipped, not
    failed.  Returns ``(regressions, measured rows)``.
    """
    baseline = load_baseline(baseline_path)
    rows = []
    for key in sorted(baseline.get("rows", {})):
        name, opt, variant = key.split("@")
        if workloads is not None and name not in workloads:
            continue
        row, _ = measure_workload(name, opt, variant)
        if db is not None:
            row = db.append(row)
        rows.append(row)
    return check_rows(rows, baseline, require_all=workloads is None), rows


def anomaly_check_workloads(
    db: PerfDB,
    workloads: Optional[Sequence[str]] = None,
    policy: Optional[AnomalyPolicy] = None,
    record: bool = False,
) -> tuple[list[Anomaly], list[dict]]:
    """The baseline-free gate behind ``repro perf check --anomaly``.

    Measures every configuration the store has history for (optionally
    restricted to a workload subset), judges each fresh row against its
    own history with :func:`~repro.obs.anomaly.detect_row_anomalies`,
    and — with ``record=True`` — appends the fresh rows so the history
    keeps growing.  Returns ``(anomalies, measured rows)``; an empty
    rows list means the store had nothing to judge (exit code 2 in the
    CLI, mirroring the baseline gate's contract).
    """
    policy = policy or AnomalyPolicy()
    keys = sorted(
        {
            (r["workload"], r["opt"], r["variant"])
            for r in db.rows()
            if "workload" in r and "opt" in r and "variant" in r
        }
    )
    anomalies: list[Anomaly] = []
    measured: list[dict] = []
    for name, opt, variant in keys:
        if workloads is not None and name not in workloads:
            continue
        history = db.rows(name, opt, variant)
        row, _ = measure_workload(name, opt, variant)
        anomalies.extend(detect_row_anomalies(history, row, policy))
        if record:
            row = db.append(row)
        measured.append(row)
    return anomalies, measured


def profile_for(name: str, opt: str = "O0", variant: str = "static") -> CycleProfile:
    """Convenience: just the attribution profile of one workload run."""
    _, result = measure_workload(name, opt, variant)
    return result.profile()
