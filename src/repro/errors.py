"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
client code can catch library failures with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class LexError(ReproError):
    """Raised when the mini-C lexer encounters an invalid character."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


class ParseError(ReproError):
    """Raised when the mini-C parser encounters invalid syntax."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        super().__init__(f"{line}:{col}: {message}" if line else message)
        self.line = line
        self.col = col


class SemanticError(ReproError):
    """Raised by semantic analysis (undeclared names, type mismatches...)."""


class InterpError(ReproError):
    """Raised by the runtime when a program performs an invalid operation."""


class AnalysisError(ReproError):
    """Raised by a static analysis that cannot handle the given program."""


class TransformError(ReproError):
    """Raised when a reuse transformation cannot be applied to a segment."""


class ConfigError(ReproError):
    """Raised when a configuration object holds an invalid value.

    Surfaced at construction time (``PipelineConfig``, ``GovernorPolicy``,
    the ``repro.api`` entry points) so a bad knob fails fast instead of
    deep inside table sizing or a measured run.
    """
