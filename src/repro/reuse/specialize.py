"""Code specialization to reduce hashing overhead (section 2.4).

When a function-body segment fails the ``O/C < 1`` pre-filter because its
input set is wide, but some of its arguments are *invariant at the call
sites* — literal constants, or global arrays the coverage analysis proves
are never modified — the scheme clones the function with those parameters
bound, rewrites the call sites, and lets the (much narrower) specialized
version become the reuse candidate.

This is exactly the paper's ``quan`` story: the original takes
``(val, table, size)``; at most call sites ``size == 15`` and ``table``
is (a copy of) the invariant ``power2``, so the specialized version has
the single input ``val``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional

from ..minic import astnodes as ast
from ..minic.types import ArrayType

MAX_VERSIONS_PER_FUNCTION = 4


@dataclass(frozen=True)
class Binding:
    """One bound parameter: position, and either a literal or a global."""

    position: int
    kind: str  # "const" | "global"
    const_value: int = 0
    global_name: str = ""

    def describe(self) -> str:
        if self.kind == "const":
            return f"arg{self.position}={self.const_value}"
        return f"arg{self.position}->{self.global_name}"


@dataclass
class SpecializationRecord:
    original: str
    specialized: str
    bindings: tuple[Binding, ...]
    call_sites: int = 0


class Specializer:
    def __init__(self, program: ast.Program, invariants: frozenset) -> None:
        self.program = program
        self.invariant_names = {s.name for s in invariants}
        self.records: list[SpecializationRecord] = []
        self._version_counter: dict[str, int] = {}

    # -- binding detection ----------------------------------------------------

    def _binding_of_arg(self, position: int, arg: ast.Expr) -> Optional[Binding]:
        if isinstance(arg, ast.IntLit):
            return Binding(position=position, kind="const", const_value=arg.value)
        if isinstance(arg, ast.Name) and arg.symbol is not None:
            symbol = arg.symbol
            if (
                symbol.kind == "global"
                and isinstance(symbol.type, ArrayType)
                and symbol.name in self.invariant_names
            ):
                return Binding(position=position, kind="global", global_name=symbol.name)
        return None

    def _signature_of_call(self, call: ast.Call) -> tuple[Binding, ...]:
        bindings = []
        for position, arg in enumerate(call.args):
            binding = self._binding_of_arg(position, arg)
            if binding is not None:
                bindings.append(binding)
        return tuple(bindings)

    # -- the pass -----------------------------------------------------------------

    def specialize_function(self, name: str) -> list[SpecializationRecord]:
        """Attempt to specialize all call sites of function ``name``.

        Returns the records of versions created (possibly empty)."""
        fn = self.program.function(name)
        if not fn.params:
            return []
        if self._shadows_globals(fn):
            return []
        calls = self._direct_calls_to(name)
        if not calls:
            return []
        by_signature: dict[tuple[Binding, ...], list[ast.Call]] = {}
        for call in calls:
            signature = self._signature_of_call(call)
            if signature:
                by_signature.setdefault(signature, []).append(call)
        created: list[SpecializationRecord] = []
        for signature, sites in sorted(
            by_signature.items(), key=lambda item: -len(item[1])
        ):
            if self._version_counter.get(name, 0) >= MAX_VERSIONS_PER_FUNCTION:
                break
            record = self._create_version(fn, signature, sites)
            created.append(record)
        self.records.extend(created)
        return created

    def _direct_calls_to(self, name: str) -> list[ast.Call]:
        result = []
        for fn in self.program.functions:
            for node in ast.walk(fn.body):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.name == name
                    and node.func.symbol is not None
                    and node.func.symbol.kind == "func"
                ):
                    result.append(node)
        return result

    def _shadows_globals(self, fn: ast.Function) -> bool:
        """True if the function declares locals that would capture the
        rewritten global references (conservative bail-out)."""
        local_names = {p.name for p in fn.params}
        for node in ast.walk(fn.body):
            if isinstance(node, ast.VarDecl):
                local_names.add(node.name)
        return bool(local_names & self.invariant_names)

    def _create_version(
        self,
        fn: ast.Function,
        signature: tuple[Binding, ...],
        sites: list[ast.Call],
    ) -> SpecializationRecord:
        version = self._version_counter.get(fn.name, 0)
        self._version_counter[fn.name] = version + 1
        new_name = f"{fn.name}__s{version}"

        clone = copy.deepcopy(fn)
        clone.name = new_name
        clone.symbol = None
        bound_positions = {b.position for b in signature}
        substitutions: dict[str, ast.Expr] = {}
        for binding in signature:
            param = fn.params[binding.position]
            if binding.kind == "const":
                substitutions[param.name] = ast.IntLit(value=binding.const_value)
            else:
                substitutions[param.name] = ast.Name(name=binding.global_name)
        clone.params = [
            p for i, p in enumerate(clone.params) if i not in bound_positions
        ]
        _substitute_names(clone.body, substitutions)
        self.program.functions.append(clone)

        for call in sites:
            call.func = ast.Name(name=new_name, line=call.line)
            call.args = [
                a for i, a in enumerate(call.args) if i not in bound_positions
            ]
        return SpecializationRecord(
            original=fn.name,
            specialized=new_name,
            bindings=signature,
            call_sites=len(sites),
        )


def _substitute_names(block: ast.Block, substitutions: dict[str, ast.Expr]) -> None:
    """Replace reads of the given names with replacement expressions.

    The replacements are literals or global names, so no capture issues
    arise (the caller already bailed out on shadowing)."""

    def sub_expr(expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.Name) and expr.name in substitutions:
            return copy.deepcopy(substitutions[expr.name])
        for attr in ("operand", "lhs", "rhs", "target", "value", "cond", "then", "els", "base", "index", "func"):
            child = getattr(expr, attr, None)
            if isinstance(child, ast.Expr):
                setattr(expr, attr, sub_expr(child))
        if isinstance(expr, ast.Call):
            expr.args = [sub_expr(a) for a in expr.args]
        return expr

    for node in list(ast.walk(block)):
        if isinstance(node, ast.ExprStmt):
            node.expr = sub_expr(node.expr)
        elif isinstance(node, ast.Return) and node.value is not None:
            node.value = sub_expr(node.value)
        elif isinstance(node, ast.VarDecl) and node.init is not None:
            node.init = sub_expr(node.init)
        elif isinstance(node, (ast.If, ast.While, ast.DoWhile)):
            node.cond = sub_expr(node.cond)
        elif isinstance(node, ast.For):
            if node.cond is not None:
                node.cond = sub_expr(node.cond)
            if node.step is not None:
                node.step = sub_expr(node.step)
