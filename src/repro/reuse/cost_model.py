"""The cost-benefit model: formulas (1)-(4) of the paper.

Given a segment's computation granularity ``C``, hashing overhead ``O``
(both in cycles) and reuse rate ``R``:

* cost with reuse   (1):  ``(C + O) * (1 - R) + O * R``
* gain              (2):  ``C - [(C+O)(1-R) + O R]  ==  R*C - O``
* beneficial        (3):  ``R > O / C``  (equivalently ``R*C - O > 0``)
* nested preference (4):  reuse the inner segment when
  ``g_outer - n * g_inner < 0`` (``n`` inner executions per outer one)

Since R <= 1 always, a segment with ``O/C >= 1`` can never benefit — the
pre-filter that trims the value-profiling workload.
"""

from __future__ import annotations


def cost_with_reuse(granularity: float, overhead: float, reuse_rate: float) -> float:
    """Formula (1): expected per-execution cost after transformation."""
    return (granularity + overhead) * (1.0 - reuse_rate) + overhead * reuse_rate


def gain(granularity: float, overhead: float, reuse_rate: float) -> float:
    """Formula (2): expected per-execution gain, R*C - O."""
    return reuse_rate * granularity - overhead


def is_beneficial(granularity: float, overhead: float, reuse_rate: float) -> bool:
    """Formula (3): should this segment be transformed?"""
    return gain(granularity, overhead, reuse_rate) > 0.0


def passes_prefilter(granularity_lower: float, overhead_upper: float) -> bool:
    """The O/C < 1 static filter applied before value profiling."""
    if granularity_lower <= 0.0:
        return False
    return overhead_upper / granularity_lower < 1.0


def prefer_inner(gain_outer: float, inner_total_gain: float) -> bool:
    """Formula (4): reuse the inner segment(s) when g1 - n*g2 < 0.

    ``inner_total_gain`` is the sum over sequential inner segments of
    ``n_i * g_i`` (per one execution of the outer segment)."""
    return gain_outer - inner_total_gain < 0.0
