"""Granularity analysis: a static lower bound on a segment's computation.

The paper estimates "a lower bound on the granularity" before profiling
(the cheap pre-filter), and later refines C with measured values.  The
static bound walks the region and sums per-operation cycle costs, taking
the cheaper branch of every IF and assuming loops run **at least one
iteration** (a segment wrapping a zero-trip loop would never be selected
anyway, and a zero lower bound would disable the O/C pre-filter
entirely).  Calls add the callee's bound; recursion contributes only the
call overhead.
"""

from __future__ import annotations

from typing import Optional

from ..minic import astnodes as ast
from ..minic.builtins import BUILTINS
from ..minic.sema import Typer
from ..minic.types import FLOAT, decay
from ..runtime import costs
from ..runtime.costs import CostTable


class GranularityAnalysis:
    def __init__(self, program: ast.Program, cost_table: Optional[CostTable] = None) -> None:
        self.program = program
        self.cost = cost_table or costs.O0
        self.typer = Typer(program)
        self._functions = {fn.name: fn for fn in program.functions}
        self._fn_cache: dict[str, float] = {}
        self._visiting: set[str] = set()

    # -- public API --------------------------------------------------------

    def region_cycles(self, region_root: ast.Block) -> float:
        """Lower-bound cycles for one execution of the region."""
        return self._block(region_root)

    def function_cycles(self, name: str) -> float:
        if name in self._fn_cache:
            return self._fn_cache[name]
        fn = self._functions.get(name)
        if fn is None:
            return 0.0
        if name in self._visiting:
            return 0.0  # recursion: only the call overhead is counted
        self._visiting.add(name)
        result = self._block(fn.body) + self.cost.cycles[costs.RET]
        self._visiting.discard(name)
        self._fn_cache[name] = result
        return result

    # -- statements -----------------------------------------------------------

    def _block(self, block: ast.Block) -> float:
        return sum(self._stmt(s) for s in block.stmts)

    def _stmt(self, stmt: ast.Stmt) -> float:
        c = self.cost.cycles
        if isinstance(stmt, ast.ExprStmt):
            return self._expr(stmt.expr)
        if isinstance(stmt, ast.DeclStmt):
            total = 0.0
            for decl in stmt.decls:
                if decl.init is not None:
                    total += self._expr(decl.init) + c[costs.LOCAL_WR]
            return total
        if isinstance(stmt, ast.Block):
            return self._block(stmt)
        if isinstance(stmt, ast.If):
            cond = self._expr(stmt.cond) + c[costs.BRANCH]
            then = self._block(stmt.then)
            els = self._block(stmt.els) if stmt.els is not None else 0.0
            return cond + min(then, els)
        if isinstance(stmt, (ast.While, ast.DoWhile)):
            # unknown trip count: assume one iteration + one condition test
            return self._expr(stmt.cond) + c[costs.BRANCH] + self._block(stmt.body)
        if isinstance(stmt, ast.For):
            trips = self._trip_estimate(stmt)
            total = 0.0
            if stmt.init is not None:
                total += self._stmt(stmt.init)
            per_iter = 0.0
            if stmt.cond is not None:
                per_iter += self._expr(stmt.cond) + c[costs.BRANCH]
            per_iter += self._block(stmt.body)
            if stmt.step is not None:
                per_iter += self._expr(stmt.step)
            return total + trips * per_iter
        if isinstance(stmt, ast.Return):
            return self._expr(stmt.value) if stmt.value is not None else 0.0
        return c[costs.BRANCH] if isinstance(stmt, (ast.Break, ast.Continue)) else 0.0

    def _trip_estimate(self, stmt: ast.For) -> float:
        """Estimated iterations of a for loop.

        ``for (i = C0; i < C1; i++)`` with literal bounds iterates exactly
        ``C1 - C0`` times — unless the body can ``break`` early, in which
        case we halve the estimate (the paper's granularity figures come
        from profiling anyway; the static number only drives the O/C
        pre-filter).  Anything unrecognized estimates one iteration.
        """
        start = self._literal_init(stmt.init)
        bound, inclusive = self._literal_bound(stmt.cond)
        step = self._unit_step(stmt.step)
        if start is None or bound is None or step is None:
            return 1.0
        trips = (bound - start + (1 if inclusive else 0)) / step
        if trips <= 0:
            return 1.0
        if any(isinstance(n, ast.Break) for n in ast.walk(stmt.body)):
            trips = max(1.0, trips / 2.0)
        return trips

    @staticmethod
    def _literal_init(init) -> Optional[int]:
        if isinstance(init, ast.DeclStmt) and len(init.decls) == 1:
            d = init.decls[0]
            if isinstance(d.init, ast.IntLit):
                return d.init.value
        if isinstance(init, ast.ExprStmt) and isinstance(init.expr, ast.Assign):
            a = init.expr
            if a.op == "=" and isinstance(a.value, ast.IntLit):
                return a.value.value
        return None

    @staticmethod
    def _literal_bound(cond) -> tuple[Optional[int], bool]:
        if isinstance(cond, ast.Binary) and cond.op in ("<", "<="):
            if isinstance(cond.rhs, ast.IntLit):
                return cond.rhs.value, cond.op == "<="
        return None, False

    @staticmethod
    def _unit_step(step) -> Optional[int]:
        if isinstance(step, ast.IncDec) and step.op == "++":
            return 1
        if isinstance(step, ast.Assign) and step.op == "+=":
            if isinstance(step.value, ast.IntLit) and step.value.value > 0:
                return step.value.value
        return None

    # -- expressions -------------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> float:
        c = self.cost.cycles
        if isinstance(expr, (ast.IntLit, ast.FloatLit)):
            return c[costs.CONST]
        if isinstance(expr, ast.Name):
            if expr.symbol is None or expr.symbol.kind == "func":
                return 0.0
            if expr.symbol.kind == "global":
                return c[costs.GLOBAL_RD] if expr.symbol.type.is_scalar else c[costs.CONST]
            return c[costs.LOCAL_RD] if expr.symbol.type.is_scalar else c[costs.CONST]
        if isinstance(expr, ast.Unary):
            if expr.op == "*":
                return self._expr(expr.operand) + c[costs.MEM_RD]
            if expr.op == "&":
                return c[costs.ALU]
            cls = costs.FALU if self._is_float(expr.operand) else costs.ALU
            return self._expr(expr.operand) + c[cls]
        if isinstance(expr, ast.IncDec):
            return self._expr(expr.target) + c[costs.ALU] + self._store_cost(expr.target)
        if isinstance(expr, ast.Binary):
            if expr.op == ",":
                return self._expr(expr.lhs) + self._expr(expr.rhs)
            sub = self._expr(expr.lhs) + self._expr(expr.rhs)
            is_float = self._is_float(expr.lhs) or self._is_float(expr.rhs)
            if expr.op == "*":
                cls = costs.FMUL if is_float else costs.MUL
            elif expr.op in ("/", "%"):
                cls = costs.FDIV if is_float else costs.DIV
            elif is_float:
                cls = costs.FALU
            else:
                cls = costs.ALU
            return sub + c[cls]
        if isinstance(expr, ast.Logical):
            # lower bound: short-circuit after the left operand
            return self._expr(expr.lhs) + c[costs.BRANCH]
        if isinstance(expr, ast.Ternary):
            return (
                self._expr(expr.cond)
                + c[costs.BRANCH]
                + min(self._expr(expr.then), self._expr(expr.els))
            )
        if isinstance(expr, ast.Assign):
            base = self._expr(expr.value) + self._store_cost(expr.target)
            if expr.op != "=":
                base += self._expr(expr.target) + c[costs.ALU]
            return base
        if isinstance(expr, ast.Index):
            return self._expr(expr.base) + self._expr(expr.index) + c[costs.MEM_RD]
        if isinstance(expr, ast.Call):
            args = sum(self._expr(a) for a in expr.args)
            if isinstance(expr.func, ast.Name):
                if expr.func.symbol is None:
                    sig = BUILTINS.get(expr.func.name)
                    if sig is not None and sig.zero_cost:
                        return args
                    if expr.func.name in ("__cos", "__sin", "__sqrt", "__floor"):
                        return args + c[costs.MATH]
                    return args + c[costs.ALU]
                if expr.func.symbol.kind == "func":
                    return args + c[costs.CALL] + self.function_cycles(expr.func.name)
            return args + c[costs.CALL]
        return 0.0

    def _store_cost(self, target: ast.Expr) -> float:
        c = self.cost.cycles
        if isinstance(target, ast.Name):
            if target.symbol is not None and target.symbol.kind == "global":
                return c[costs.GLOBAL_WR]
            return c[costs.LOCAL_WR]
        return c[costs.MEM_WR]

    def _is_float(self, expr: ast.Expr) -> bool:
        try:
            return decay(self.typer.type_of(expr)) == FLOAT
        except Exception:
            return False
