"""Sub-segment candidates — the paper's future-work extension (§5).

"Most important of all, a candidate code segment can be a part of a loop
body, a function body, or an IF branch, instead of the entire body.  How
to identify the most cost-effective part remains our future work."

This module implements that extension: when a body is disqualified as a
whole (it performs I/O, or a ``break``/``continue``/``return`` escapes
it), we search its statement list for maximal *clean runs* — contiguous
statements that

* contain no escaping control flow and no I/O,
* declare no variable that is referenced after the run (wrapping the run
  in a block must not change scoping).

Each qualifying run is wrapped in a (semantically transparent) nested
block, which then goes through the standard segment machinery —
input/output analysis, cost estimates, profiling, cost-benefit test, and
the Figure 2(b) transformation — exactly like a first-class candidate.

Disabled by default (``PipelineConfig.enable_subsegments``); it is an
extension beyond the published scheme.
"""

from __future__ import annotations

from ..minic import astnodes as ast
from .hashing_cost import hashing_overhead
from .segments import (
    ProgramAnalysis,
    Segment,
    _analyze_segment,
    _calls_in,
    _region_escapes,
    _IO_BUILTINS,
)


def _stmt_is_clean(stmt: ast.Stmt, analysis: ProgramAnalysis) -> bool:
    """No escaping control flow, no I/O, not already instrumented."""
    if _region_escapes(ast.Block(stmts=[stmt])):
        return False
    for name in _calls_in(stmt):
        if name in _IO_BUILTINS or name.startswith("__reuse"):
            return False
        if name in analysis.io_functions:
            return False
    return True


def _declared_symbols(stmt: ast.Stmt) -> set:
    symbols = set()
    for node in ast.walk(stmt):
        if isinstance(node, ast.VarDecl) and node.symbol is not None:
            symbols.add(node.symbol)
    return symbols


def _symbols_read(stmts: list[ast.Stmt]) -> set:
    symbols = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.symbol is not None:
                symbols.add(node.symbol)
    return symbols


def _candidate_ranges(block: ast.Block, analysis: ProgramAnalysis):
    """Yield every (start, end) sub-range of clean statements whose
    declarations do not leak past the range (wrapping stays scope-safe).
    Proper sub-ranges only."""
    n = len(block.stmts)
    clean = [_stmt_is_clean(s, analysis) for s in block.stmts]
    for start in range(n):
        if not clean[start]:
            continue
        declared: set = set()
        for end in range(start, n):
            if not clean[end]:
                break
            if start == 0 and end == n - 1:
                continue  # the whole block is the existing candidate
            declared |= _declared_symbols(block.stmts[end])
            if declared & _symbols_read(block.stmts[end + 1 :]):
                continue  # a declaration would leak out of the wrapper
            yield (start, end)


def _substantial(stmts: list[ast.Stmt]) -> bool:
    """Worth considering: contains a loop, or several statements."""
    if len(stmts) >= 3:
        return True
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.For, ast.While, ast.DoWhile)):
                return True
    return False


def _score_range(
    block: ast.Block,
    start: int,
    end: int,
    analysis: ProgramAnalysis,
    granularity,
    segment: Segment,
    scratch_id: int,
) -> tuple[float, Segment] | None:
    """Evaluate one candidate range without mutating the tree.

    A detached block referencing the in-tree statements is enough for the
    region analyses (membership is by statement identity).  The score is
    the static cost-effectiveness C/O — 'the most cost-effective part'."""
    stmts = block.stmts[start : end + 1]
    if not _substantial(stmts):
        return None
    probe_block = ast.Block(stmts=stmts, line=stmts[0].line)
    candidate = Segment(
        seg_id=scratch_id,
        kind="sub-block",
        func_name=segment.func_name,
        region_root=probe_block,
        control=segment.control,
    )
    _analyze_segment(candidate, analysis)
    if not candidate.feasible:
        return None
    # Accumulator rejection: a symbol that is both input and output of
    # the range carries state from one body iteration to the next unless
    # the statements *before* the range freshly (strongly) define it —
    # such carried state makes the hash key effectively unique and the
    # memo useless (e.g. `checksum += ...` inside the range).
    in_syms = {shape.symbol for shape in candidate.inputs}
    out_syms = {shape.symbol for shape in candidate.outputs}
    carried = in_syms & out_syms
    if carried:
        defined_before: set = set()
        for stmt in block.stmts[:start]:
            defined_before |= analysis.extractor.of_stmt(stmt).defs
        if carried - defined_before:
            return None
    c = granularity.region_cycles(probe_block)
    overhead = hashing_overhead(candidate)
    if overhead <= 0 or c / overhead <= 1.0:
        return None
    candidate.static_granularity = c
    candidate.overhead = overhead
    return (c / overhead, candidate)


def enumerate_subsegments(
    analysis: ProgramAnalysis,
    segments: list[Segment],
    next_id: int,
    granularity=None,
) -> list[Segment]:
    """Find sub-block candidates inside bodies that failed as a whole.

    ``segments`` is the list from :func:`enumerate_segments`; only bodies
    whose segment was rejected for escapes or I/O are searched.  For each
    such body, every clean scope-safe sub-range is scored by its static
    cost-effectiveness ``C/O`` and the best one becomes a candidate (the
    range is wrapped in a behaviour-neutral nested block).
    """
    if granularity is None:
        from .granularity import GranularityAnalysis

        granularity = GranularityAnalysis(analysis.program)
    new_segments: list[Segment] = []
    for segment in segments:
        if segment.feasible:
            continue
        reason = segment.reject_reason
        if "escape" not in reason and "I/O" not in reason:
            continue
        block = segment.region_root
        best: tuple[float, Segment, int, int] | None = None
        for start, end in _candidate_ranges(block, analysis):
            scored = _score_range(
                block, start, end, analysis, granularity, segment, next_id
            )
            if scored is None:
                continue
            score, candidate = scored
            if best is None or score > best[0]:
                best = (score, candidate, start, end)
        if best is None:
            continue
        _, candidate, start, end = best
        wrapper = candidate.region_root
        block.stmts[start : end + 1] = [wrapper]
        candidate.seg_id = next_id
        next_id += 1
        new_segments.append(candidate)
    return new_segments
