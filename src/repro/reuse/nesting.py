"""The interprocedural nesting graph and segment selection (section 2.3).

When profitable segments nest — loops in loops, loops in routines,
routine calls inside loops, routines calling routines — the scheme
transforms at most one segment per nest.  The decision procedure:

1. build a graph with an arc from each profitable outer segment to each
   profitable segment immediately nested in it (interprocedurally: a
   segment containing a call reaching function *f* is outer to *f*'s
   segments);
2. condense recursion-induced SCCs, keeping only the best-gain member of
   each non-singleton SCC as a candidate;
3. traverse the DAG bottom-up computing, for every node, the better of
   "transform me" (gain ``g(X)`` per execution) versus "transform my
   inner segments" (``sum n_i * decided(c_i)``, formula (4) generalized
   to sequential inner segments);
4. walk top-down selecting nodes that chose themselves and have no
   selected ancestor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..minic import astnodes as ast
from ..ir.scc import condense, topological_order
from .cost_model import prefer_inner
from .segments import ProgramAnalysis, Segment


def _contains_node(region_root: ast.Node, target: ast.Node) -> bool:
    return any(node is target for node in ast.walk(region_root))


def _region_call_names(region_root: ast.Node, analysis: ProgramAnalysis) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(region_root):
        if isinstance(node, ast.Call):
            names |= analysis.points_to.call_targets(node)
    return names


@dataclass
class NestingDecision:
    """Per-node record of the bottom-up comparison."""

    seg_id: int
    gain_self: float
    gain_inner: float  # sum of n_i * decided(c_i)
    chose_self: bool
    decided: float


class NestingGraph:
    """Builds the graph over *profitable* segments and runs selection."""

    def __init__(self, segments: list[Segment], analysis: ProgramAnalysis) -> None:
        self.analysis = analysis
        self.segments = {s.seg_id: s for s in segments}
        self.edges: dict[int, set[int]] = {s.seg_id: set() for s in segments}
        self._build_edges(segments)
        self._transitive_reduce()
        self.decisions: dict[int, NestingDecision] = {}

    # -- graph construction ----------------------------------------------------

    def _build_edges(self, segments: list[Segment]) -> None:
        reachable = {
            fn.name: self.analysis.callgraph.reachable_from(fn.name)
            for fn in self.analysis.program.functions
        }
        for outer in segments:
            called = _region_call_names(outer.region_root, self.analysis)
            called_closure: set[str] = set()
            for name in called:
                called_closure |= reachable.get(name, {name})
            for inner in segments:
                if inner.seg_id == outer.seg_id:
                    continue
                if inner.func_name == outer.func_name and _contains_node(
                    outer.region_root, inner.control
                ):
                    self.edges[outer.seg_id].add(inner.seg_id)
                elif inner.func_name in called_closure:
                    self.edges[outer.seg_id].add(inner.seg_id)

    def _transitive_reduce(self) -> None:
        """Keep only immediate-nesting arcs so inner gains are not
        double-counted during the bottom-up sum."""
        # first condense cycles (recursion): reduction happens on the DAG
        component_of, members, dag = condense(self.edges)
        reduced: dict[int, set[int]] = {cid: set(succs) for cid, succs in dag.items()}
        for a in list(reduced):
            for b in list(reduced[a]):
                # drop a->b if some other successor c of a reaches b
                for c in reduced[a]:
                    if c == b:
                        continue
                    if self._reaches(reduced, c, b):
                        reduced[a].discard(b)
                        break
        self._component_of = component_of
        self._members = members
        self._dag = reduced

    @staticmethod
    def _reaches(dag: dict[int, set[int]], src: int, dst: int) -> bool:
        stack = [src]
        seen = {src}
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            for succ in dag.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return False

    # -- selection -------------------------------------------------------------

    def select(self) -> list[Segment]:
        """Run the bottom-up comparison and return the selected segments."""
        # SCC condensation: keep the best-gain member of each component.
        best_member: dict[int, Segment] = {}
        for cid, member_ids in self._members.items():
            candidates = [self.segments[sid] for sid in member_ids]
            best = max(candidates, key=lambda s: s.gain)
            best_member[cid] = best
        self._best_member = best_member

        order = topological_order(self._dag)  # parents before children
        # bottom-up: children first
        for cid in reversed(order):
            segment = best_member[cid]
            inner_total = 0.0
            for child_cid in self._dag.get(cid, ()):
                child = best_member[child_cid]
                child_decision = self.decisions[child.seg_id]
                n = self._executions_ratio(child, segment)
                inner_total += n * child_decision.decided
            chose_self = not prefer_inner(segment.gain, inner_total)
            self.decisions[segment.seg_id] = NestingDecision(
                seg_id=segment.seg_id,
                gain_self=segment.gain,
                gain_inner=inner_total,
                chose_self=chose_self,
                decided=max(segment.gain, inner_total),
            )

        # top-down: select nodes that chose themselves and are uncovered.
        # ``cover_src`` remembers, for reporting, *which* selected segment
        # covers each node: the covering ancestor when covered, the node's
        # own segment when it was selected, None otherwise.
        covered: dict[int, bool] = {}
        cover_src: dict[int, Optional[int]] = {}
        selected: list[Segment] = []
        parents: dict[int, set[int]] = {cid: set() for cid in self._dag}
        for cid, succs in self._dag.items():
            for s in succs:
                parents[s].add(cid)
        for cid in order:
            segment = best_member[cid]
            src: Optional[int] = None
            for p in sorted(parents[cid]):
                if covered[p]:
                    src = cover_src[p] if cover_src[p] is not None else best_member[p].seg_id
                    break
                if best_member[p].seg_id in self._selected_ids(selected):
                    src = best_member[p].seg_id
                    break
            is_covered = src is not None
            chose_self = self.decisions[segment.seg_id].chose_self
            covered[cid] = is_covered or (chose_self and not is_covered)
            if not is_covered and chose_self:
                selected.append(segment)
                cover_src[cid] = segment.seg_id
            else:
                cover_src[cid] = src
        self._cover_src = cover_src
        for segment in selected:
            segment.selected = True
        return selected

    def explain(self) -> dict[int, dict]:
        """Per-segment outcome of the nesting stage (call after select()).

        Each entry has a ``reason`` — ``selected``, ``scc`` (a recursive
        SCC kept a better member), ``inner-preferred`` (formula 4 chose
        the nested segments), or ``covered`` (a selected ancestor already
        subsumes this nest) — and a signed ``margin``: ``gain - best_gain``
        for SCC losers, ``g_self - g_inner`` otherwise.
        """
        info: dict[int, dict] = {}
        for cid, member_ids in self._members.items():
            best = self._best_member[cid]
            decision = self.decisions[best.seg_id]
            margin = decision.gain_self - decision.gain_inner
            src = self._cover_src.get(cid)
            for sid in member_ids:
                segment = self.segments[sid]
                if sid != best.seg_id:
                    info[sid] = {
                        "reason": "scc",
                        "margin": segment.gain - best.gain,
                        "best": best.seg_id,
                    }
                elif src == sid:
                    info[sid] = {
                        "reason": "selected",
                        "margin": margin,
                        "gain_self": decision.gain_self,
                        "gain_inner": decision.gain_inner,
                    }
                elif not decision.chose_self:
                    info[sid] = {
                        "reason": "inner-preferred",
                        "margin": margin,
                        "gain_self": decision.gain_self,
                        "gain_inner": decision.gain_inner,
                    }
                else:
                    info[sid] = {
                        "reason": "covered",
                        "margin": margin,
                        "covered_by": src,
                    }
        return info

    @staticmethod
    def _selected_ids(selected: list[Segment]) -> set[int]:
        return {s.seg_id for s in selected}

    def _executions_ratio(self, inner: Segment, outer: Segment) -> float:
        """n: average inner executions per outer execution."""
        if outer.executions <= 0:
            return 1.0
        return inner.executions / outer.executions
