"""The paper's contribution: the computation-reuse compiler scheme."""

from . import cost_model
from .cost_model import (
    cost_with_reuse,
    gain,
    is_beneficial,
    passes_prefilter,
    prefer_inner,
)
from .granularity import GranularityAnalysis
from .hashing_cost import annotate_costs, hashing_overhead
from .instrument import instrument_program, instrument_segment, strip_instrumentation
from .merging import merge_groups, merged_size_bytes, unmerged_size_bytes
from .nesting import NestingDecision, NestingGraph
from .pipeline import PipelineConfig, PipelineResult, ReusePipeline
from .segments import ProgramAnalysis, Segment, enumerate_segments
from .specialize import Binding, SpecializationRecord, Specializer
from .transform import ReuseTransformer, TableSpec

__all__ = [
    "cost_model",
    "cost_with_reuse",
    "gain",
    "is_beneficial",
    "passes_prefilter",
    "prefer_inner",
    "GranularityAnalysis",
    "annotate_costs",
    "hashing_overhead",
    "instrument_program",
    "instrument_segment",
    "strip_instrumentation",
    "merge_groups",
    "merged_size_bytes",
    "unmerged_size_bytes",
    "NestingDecision",
    "NestingGraph",
    "PipelineConfig",
    "PipelineResult",
    "ReusePipeline",
    "ProgramAnalysis",
    "Segment",
    "enumerate_segments",
    "Binding",
    "SpecializationRecord",
    "Specializer",
    "ReuseTransformer",
    "TableSpec",
]
