"""Code generation for computation reuse (Figure 2(b) of the paper).

For a selected loop-body or IF-branch segment, the region block becomes::

    if (__reuse_probe(<id>, in1, ...) == 0) {
        <original statements>
        __reuse_commit(<id>, out1, ..., outM);
    }
    else {
        out1 = __reuse_out_i(<id>, 0);
        ...
        __reuse_end(<id>);
    }

For a function-body segment the probe guards the whole body and every
``return e`` on the miss path becomes::

    { int __rv_k = e; __reuse_commit(<id>, outs..., __rv_k); return __rv_k; }

so the return value is memoized alongside the other outputs — exactly how
the paper's transformed ``quan`` records ``i`` before returning it.

All generated names carry resolved symbols, so the transformed program is
immediately executable; it also pretty-prints to valid mini-C that
re-parses (the source-to-source property).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import TransformError
from ..minic import astnodes as ast
from ..minic.types import FLOAT, INT
from ..runtime.governor import GovernorPolicy
from ..runtime.hashtable import SAMPLE_BUDGET
from .segments import ProgramAnalysis, Segment


@dataclass
class TableSpec:
    """Everything the runner needs to build one segment's reuse table.

    Beyond the geometry, the spec carries the static constants the
    generated guard needs at run time: the measured per-execution cost
    ``C`` (``granularity_cycles``), the hashing-overhead upper bound
    ``O`` (``overhead_cycles``), and the governor thresholds — the
    compile-time half of the online reuse governor
    (:mod:`repro.runtime.governor`).  ``governor`` is None when the
    pipeline ran without value profiling (direct transformer use); the
    runtime then falls back to the default policy.
    """

    segment_id: int
    capacity: int
    in_words: int
    out_words: int
    merged_group: Optional[str] = None
    # for merged groups: (segment id -> out words) of all members
    group_members: dict = field(default_factory=dict)
    # static guard constants: measured C and the O upper bound, in cycles
    granularity_cycles: float = 0.0
    overhead_cycles: float = 0.0
    # governor thresholds emitted by the pipeline (None = not configured)
    governor: Optional[GovernorPolicy] = None
    # hit-ratio ring-buffer capacity of the table's TableStats (>= 2)
    sample_budget: int = SAMPLE_BUDGET


def _always_returns(stmt: ast.Stmt) -> bool:
    """Conservative: does control definitely not fall past this statement?"""
    if isinstance(stmt, ast.Return):
        return True
    if isinstance(stmt, ast.Block):
        return bool(stmt.stmts) and _always_returns(stmt.stmts[-1])
    if isinstance(stmt, ast.If):
        return (
            stmt.els is not None
            and _always_returns(stmt.then)
            and _always_returns(stmt.els)
        )
    return False


def _seg(segment: Segment) -> ast.IntLit:
    return ast.IntLit(value=segment.seg_id)


def _name(symbol: ast.Symbol) -> ast.Name:
    return ast.Name(name=symbol.name, symbol=symbol)


def _call(name: str, args: list[ast.Expr], line: int = 0) -> ast.Call:
    return ast.Call(func=ast.Name(name=name), args=args, line=line)


def _call_stmt(name: str, args: list[ast.Expr], line: int = 0) -> ast.ExprStmt:
    return ast.ExprStmt(expr=_call(name, args, line), line=line)


def _first_line(block: ast.Block) -> int:
    for stmt in block.stmts:
        if stmt.line > 0:
            return stmt.line
    return 0


def _span_end(stmt: ast.Stmt) -> int:
    """Largest source line anywhere inside ``stmt``."""
    end = stmt.line
    children: list[ast.Stmt] = []
    if isinstance(stmt, ast.Block):
        children = list(stmt.stmts)
    else:
        for attr in ("body", "then", "els", "init"):
            child = getattr(stmt, attr, None)
            if isinstance(child, ast.Stmt):
                children.append(child)
    for child in children:
        child_end = _span_end(child)
        if child_end > end:
            end = child_end
    return end


class ReuseTransformer:
    def __init__(self, program: ast.Program, analysis: ProgramAnalysis) -> None:
        self.program = program
        self.analysis = analysis
        self._rv_counter = 0

    # -- public ------------------------------------------------------------

    def transform(self, segments: list[Segment]) -> list[TableSpec]:
        specs = []
        for segment in segments:
            specs.append(self.transform_segment(segment))
        return specs

    def transform_segment(self, segment: Segment) -> TableSpec:
        if not segment.feasible:
            raise TransformError(f"segment {segment.seg_id} is not feasible")
        if segment.kind == "function":
            self._transform_function(segment)
        else:
            self._transform_region(segment)
        capacity = max(1, segment.distinct_inputs)
        return TableSpec(
            segment_id=segment.seg_id,
            capacity=capacity,
            in_words=segment.in_words,
            out_words=segment.out_words,
            merged_group=segment.merged_group,
            granularity_cycles=segment.measured_granularity,
            overhead_cycles=segment.overhead,
        )

    # -- access expressions -----------------------------------------------------

    def _access(self, segment: Segment, symbol: ast.Symbol) -> ast.Expr:
        """An expression denoting ``symbol`` at the segment boundary."""
        if symbol.kind == "global" or symbol.func_name == segment.func_name:
            return _name(symbol)
        # foreign local: reach it through a pointer parameter that aliases it
        fn = self.program.function(segment.func_name)
        for param in fn.params:
            if param.symbol is None or not param.symbol.type.is_pointer:
                continue
            if symbol in self.analysis.points_to.pointees(param.symbol):
                return _name(param.symbol)
        raise TransformError(
            f"segment {segment.seg_id}: no access path to {symbol.name!r}"
        )

    def _input_exprs(self, segment: Segment) -> list[ast.Expr]:
        return [self._access(segment, s.symbol) for s in segment.inputs]

    def _output_restore_stmts(self, segment: Segment, line: int = 0) -> list[ast.Stmt]:
        stmts: list[ast.Stmt] = []
        for position, shape in enumerate(segment.outputs):
            target = self._access(segment, shape.symbol)
            if shape.is_array:
                stmts.append(
                    _call_stmt(
                        "__reuse_out_arr",
                        [_seg(segment), ast.IntLit(value=position), target],
                        line=line,
                    )
                )
            else:
                reader = "__reuse_out_f" if shape.is_float else "__reuse_out_i"
                read = _call(reader, [_seg(segment), ast.IntLit(value=position)])
                stmts.append(
                    ast.ExprStmt(
                        expr=ast.Assign(op="=", target=target, value=read), line=line
                    )
                )
        return stmts

    def _commit_args(self, segment: Segment, retval: Optional[ast.Expr]) -> list[ast.Expr]:
        args: list[ast.Expr] = [_seg(segment)]
        for shape in segment.outputs:
            args.append(self._access(segment, shape.symbol))
        if retval is not None:
            args.append(retval)
        return args

    # -- loop-body / if-branch segments --------------------------------------------

    def _transform_region(self, segment: Segment) -> None:
        block = segment.region_root
        # Synthesized statements carry the original region's source lines
        # (probe/restores at the region head, commit/end at its last line)
        # so line-level attribution and the SourceMap point into the
        # untransformed source.  Lines never affect execution or caching.
        start = _first_line(block)
        end = _span_end(block) or start
        probe = _call(
            "__reuse_probe", [_seg(segment)] + self._input_exprs(segment), line=start
        )
        miss = ast.Block(
            stmts=list(block.stmts)
            + [_call_stmt("__reuse_commit", self._commit_args(segment, None), line=end)]
        )
        hit = ast.Block(
            stmts=self._output_restore_stmts(segment, line=start)
            + [_call_stmt("__reuse_end", [_seg(segment)], line=end)]
        )
        guard = ast.If(
            cond=ast.Binary(op="==", lhs=probe, rhs=ast.IntLit(value=0)),
            then=miss,
            els=hit,
            line=start,
        )
        block.stmts = [guard]

    # -- function-body segments -------------------------------------------------------

    def _transform_function(self, segment: Segment) -> None:
        fn = self.program.function(segment.func_name)
        block = segment.region_root
        start = _first_line(block)
        end = _span_end(block) or start
        probe = _call(
            "__reuse_probe", [_seg(segment)] + self._input_exprs(segment), line=start
        )

        # hit path
        hit_stmts = self._output_restore_stmts(segment, line=start)
        if segment.has_retval:
            rv_symbol = self._fresh_local(fn, float_type=segment.retval_is_float)
            reader = "__reuse_out_f" if segment.retval_is_float else "__reuse_out_i"
            read = _call(reader, [_seg(segment), ast.IntLit(value=len(segment.outputs))])
            hit_stmts.append(
                ast.DeclStmt(
                    decls=[
                        ast.VarDecl(
                            name=rv_symbol.name,
                            type=rv_symbol.type,
                            init=read,
                            symbol=rv_symbol,
                        )
                    ],
                    line=start,
                )
            )
            hit_stmts.append(_call_stmt("__reuse_end", [_seg(segment)], line=end))
            hit_stmts.append(ast.Return(value=_name(rv_symbol), line=end))
        else:
            hit_stmts.append(_call_stmt("__reuse_end", [_seg(segment)], line=end))
            hit_stmts.append(ast.Return(value=None, line=end))

        # miss path: rewrite returns to commit first
        self._rewrite_returns(block, segment, fn)
        # fall-through commit (reachable only when control drops off the end)
        if segment.has_retval:
            rv_symbol = self._fresh_local(fn, float_type=segment.retval_is_float)
            tail: list[ast.Stmt] = [
                ast.DeclStmt(
                    decls=[
                        ast.VarDecl(
                            name=rv_symbol.name,
                            type=rv_symbol.type,
                            init=ast.IntLit(value=0),
                            symbol=rv_symbol,
                        )
                    ],
                    line=end,
                ),
                _call_stmt(
                    "__reuse_commit",
                    self._commit_args(segment, _name(rv_symbol)),
                    line=end,
                ),
                ast.Return(value=_name(rv_symbol), line=end),
            ]
        else:
            tail = [
                _call_stmt("__reuse_commit", self._commit_args(segment, None), line=end),
            ]
        guard = ast.If(cond=probe, then=ast.Block(stmts=hit_stmts), els=None, line=start)
        # only append the tail when the body may actually fall through;
        # a body ending in a (possibly nested) return makes it unreachable
        if block.stmts and _always_returns(block.stmts[-1]):
            tail = []
        block.stmts = [guard] + block.stmts + tail

    def _rewrite_returns(self, block: ast.Block, segment: Segment, fn: ast.Function) -> None:
        def rewrite(stmts: list[ast.Stmt]) -> list[ast.Stmt]:
            result: list[ast.Stmt] = []
            for stmt in stmts:
                if isinstance(stmt, ast.Return):
                    result.append(self._commit_return(stmt, segment, fn))
                    continue
                descend(stmt)
                result.append(stmt)
            return result

        def descend(stmt: ast.Stmt) -> None:
            if isinstance(stmt, ast.Block):
                stmt.stmts = rewrite(stmt.stmts)
            elif isinstance(stmt, ast.If):
                stmt.then.stmts = rewrite(stmt.then.stmts)
                if stmt.els is not None:
                    stmt.els.stmts = rewrite(stmt.els.stmts)
            elif isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
                stmt.body.stmts = rewrite(stmt.body.stmts)

        block.stmts = rewrite(block.stmts)

    def _commit_return(self, stmt: ast.Return, segment: Segment, fn: ast.Function) -> ast.Stmt:
        line = stmt.line
        if stmt.value is None:
            return ast.Block(
                stmts=[
                    _call_stmt(
                        "__reuse_commit", self._commit_args(segment, None), line=line
                    ),
                    ast.Return(value=None, line=line),
                ],
                line=line,
            )
        rv_symbol = self._fresh_local(fn, float_type=segment.retval_is_float)
        return ast.Block(
            stmts=[
                ast.DeclStmt(
                    decls=[
                        ast.VarDecl(
                            name=rv_symbol.name,
                            type=rv_symbol.type,
                            init=stmt.value,
                            symbol=rv_symbol,
                        )
                    ],
                    line=line,
                ),
                _call_stmt(
                    "__reuse_commit",
                    self._commit_args(segment, _name(rv_symbol)),
                    line=line,
                ),
                ast.Return(value=_name(rv_symbol), line=line),
            ],
            line=line,
        )

    def _fresh_local(self, fn: ast.Function, float_type: bool) -> ast.Symbol:
        name = f"__rv{self._rv_counter}"
        self._rv_counter += 1
        symbol = ast.Symbol(
            name=name,
            type=FLOAT if float_type else INT,
            kind="local",
            slot=fn.frame_size,
            func_name=fn.name,
        )
        fn.frame_size += 1
        return symbol
