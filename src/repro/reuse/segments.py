"""Candidate code-segment identification.

"We confine the candidate code segment to a function body, a loop body,
or an IF branch."  This module enumerates those regions, runs the
input/output analyses on each, and applies the *feasibility* checks that
a sound source-to-source memoization needs:

* loop-body and IF-branch segments must not be escaped by ``break`` /
  ``continue`` / ``return`` (the commit stub must post-dominate the body);
* segments must not perform I/O (directly or transitively) — replaying a
  table lookup would drop the side effect;
* every input/output must have a bounded shape (scalars and fixed-size
  arrays; pointers resolve through points-to);
* an output that is not *must-defined* on every path through the region
  is also registered as an input: its exit value then depends on its
  entry value, so it must participate in the hash key for the memo to be
  a function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..minic import astnodes as ast
from ..minic.types import FLOAT, VOID
from ..ir.callgraph import CallGraph
from ..ir.cfg import CFG, build_cfg
from ..analysis.arrays import IOShape, shape_of
from ..analysis.coverage import invariant_globals
from ..analysis.liveness import Liveness, function_exit_live
from ..analysis.modref import ModRef
from ..analysis.pointer import PointsTo
from ..analysis.upward import segment_inputs
from ..analysis.usedef import UseDefExtractor

# Builtins whose calls make a segment non-memoizable.
_IO_BUILTINS = frozenset(
    {
        "__input_int",
        "__input_float",
        "__input_avail",
        "__output_int",
        "__output_float",
        "__print_int",
    }
)


class ProgramAnalysis:
    """All whole-program analysis artifacts the reuse pipeline needs,
    computed once per (re-)analyzed program."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.points_to = PointsTo(program)
        self.modref = ModRef(program, self.points_to)
        self.callgraph = CallGraph(program, self.points_to)
        self.global_symbols = {
            g.decl.symbol for g in program.globals if g.decl.symbol is not None
        }
        self.extractor = UseDefExtractor(
            self.points_to, modref=self.modref, global_symbols=self.global_symbols
        )
        self.invariants = invariant_globals(program, self.modref)
        const_globals = frozenset(s for s in self.global_symbols if s.is_const)
        self.invariants = self.invariants | const_globals
        self.cfgs: dict[str, CFG] = {}
        self.liveness: dict[str, Liveness] = {}
        for fn in program.functions:
            cfg = build_cfg(fn)
            self.cfgs[fn.name] = cfg
            exit_live = function_exit_live(fn, program, self.points_to)
            self.liveness[fn.name] = Liveness(cfg, self.extractor, exit_live)
        self.io_functions = self._io_functions()

    def _io_functions(self) -> set[str]:
        """Functions that may perform I/O, directly or transitively."""
        direct: set[str] = set()
        for fn in self.program.functions:
            for node in ast.walk(fn.body):
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                    if node.func.symbol is None and node.func.name in _IO_BUILTINS:
                        direct.add(fn.name)
                        break
        # transitive closure over the call graph
        result = set(direct)
        changed = True
        while changed:
            changed = False
            for caller, callees in self.callgraph.edges.items():
                if caller not in result and callees & result:
                    result.add(caller)
                    changed = True
        return result


@dataclass
class Segment:
    """One candidate code segment and everything the scheme learns about it."""

    seg_id: int
    kind: str  # "function" | "loop" | "if-branch"
    func_name: str
    region_root: ast.Block
    control: ast.Node  # the Function / loop stmt / If stmt
    inputs: list[IOShape] = field(default_factory=list)
    outputs: list[IOShape] = field(default_factory=list)
    has_retval: bool = False
    retval_is_float: bool = False
    feasible: bool = True
    reject_reason: str = ""
    # cost-model quantities (cycles); filled by granularity / hashing-cost
    static_granularity: float = 0.0
    overhead: float = 0.0
    # profiling results
    executions: int = 0
    distinct_inputs: int = 0
    reuse_rate: float = 0.0
    measured_granularity: float = 0.0
    # selection results
    gain: float = 0.0
    selected: bool = False
    merged_group: Optional[str] = None

    @property
    def in_words(self) -> int:
        return sum(s.words for s in self.inputs)

    @property
    def out_words(self) -> int:
        return sum(s.words for s in self.outputs) + (1 if self.has_retval else 0)

    def describe(self) -> str:
        ins = ", ".join(s.symbol.name for s in self.inputs)
        outs = ", ".join(s.symbol.name for s in self.outputs)
        if self.has_retval:
            outs = (outs + ", " if outs else "") + "<retval>"
        return f"[{self.seg_id}] {self.kind} in {self.func_name}: in({ins}) out({outs})"


def _region_escapes(region_root: ast.Block) -> bool:
    """True if a break/continue/return inside the region can leave it."""

    def visit(stmt: ast.Stmt, loop_depth: int) -> bool:
        if isinstance(stmt, ast.Return):
            return True
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return loop_depth == 0
        if isinstance(stmt, ast.Block):
            return any(visit(s, loop_depth) for s in stmt.stmts)
        if isinstance(stmt, ast.If):
            if visit(stmt.then, loop_depth):
                return True
            return stmt.els is not None and visit(stmt.els, loop_depth)
        if isinstance(stmt, (ast.While, ast.DoWhile)):
            return visit(stmt.body, loop_depth + 1)
        if isinstance(stmt, ast.For):
            return visit(stmt.body, loop_depth + 1)
        return False

    return any(visit(s, 0) for s in region_root.stmts)


def _calls_in(region_root: ast.Node) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(region_root):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            names.add(node.func.name)
    return names


def _must_defined_at_exit(cfg: CFG, region: set[int], analysis: ProgramAnalysis) -> frozenset:
    """Symbols strongly defined on *every* path through the region."""
    defs: dict[int, frozenset] = {}
    for nid in region:
        node = cfg.node(nid)
        if node.ast_node is None:
            defs[nid] = frozenset()
        elif isinstance(node.ast_node, ast.Stmt):
            defs[nid] = frozenset(analysis.extractor.of_stmt(node.ast_node).defs)
        else:
            defs[nid] = frozenset(analysis.extractor.of_expr(node.ast_node).defs)

    entries = cfg.region_entries(region)
    # forward, intersection meet; initialize to "all" (top)
    all_syms = frozenset().union(*defs.values()) if defs else frozenset()
    md_out: dict[int, frozenset] = {nid: all_syms for nid in region}
    from collections import deque

    worklist = deque(region)
    queued = set(region)
    while worklist:
        nid = worklist.popleft()
        queued.discard(nid)
        node = cfg.node(nid)
        region_preds = [p for p in node.preds if p in region]
        if nid in entries:
            md_in = frozenset()
        elif region_preds:
            md_in = md_out[region_preds[0]]
            for p in region_preds[1:]:
                md_in = md_in & md_out[p]
        else:
            md_in = frozenset()
        new_out = md_in | defs[nid]
        if new_out != md_out[nid]:
            md_out[nid] = new_out
            for succ in node.succs:
                if succ in region and succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)

    exits = [nid for nid in region if any(s not in region for s in cfg.node(nid).succs)]
    if not exits:
        return frozenset()
    result = md_out[exits[0]]
    for nid in exits[1:]:
        result = result & md_out[nid]
    return result


def _io_sort_key(shape: IOShape) -> tuple:
    order = {"param": 0, "local": 1, "global": 2}
    return (order.get(shape.symbol.kind, 3), shape.symbol.slot, shape.symbol.name)


def _analyze_segment(segment: Segment, analysis: ProgramAnalysis) -> None:
    fn_name = segment.func_name
    cfg = analysis.cfgs[fn_name]
    region = cfg.nodes_in_region(segment.region_root)
    if not region:
        segment.feasible = False
        segment.reject_reason = "empty region"
        return

    # escape / I/O checks -------------------------------------------------
    if segment.kind != "function" and _region_escapes(segment.region_root):
        segment.feasible = False
        segment.reject_reason = "break/continue/return escapes the region"
        return
    called = _calls_in(segment.region_root)
    for name in called:
        if name in _IO_BUILTINS:
            segment.feasible = False
            segment.reject_reason = f"performs I/O ({name})"
            return
        if name.startswith("__reuse"):
            segment.feasible = False
            segment.reject_reason = "already transformed"
            return
        if name in analysis.io_functions:
            segment.feasible = False
            segment.reject_reason = f"calls I/O function {name}"
            return

    # inputs ------------------------------------------------------------------
    input_syms = segment_inputs(cfg, region, analysis.extractor, analysis.invariants)
    live = analysis.liveness[fn_name]
    output_syms = set(live.region_outputs(region))

    # outputs not must-defined also become inputs (their entry value
    # affects their exit value)
    must = _must_defined_at_exit(cfg, region, analysis)
    extra_inputs = {s for s in output_syms if s not in must}
    input_syms = frozenset(input_syms | extra_inputs)

    # Deduplicate: when a pointer input has a single pointee that is also
    # in the input set, hashing the contents through the pointer already
    # covers the pointee — drop the duplicate (quan's table/power2 case).
    for symbol in list(input_syms):
        if symbol.type.is_pointer:
            pointees = analysis.points_to.pointees(symbol)
            if len(pointees) == 1:
                input_syms = input_syms - pointees

    fn = analysis.program.function(fn_name)
    if segment.kind == "function" and fn.ret_type != VOID:
        segment.has_retval = True
        segment.retval_is_float = fn.ret_type == FLOAT

    shapes_in: list[IOShape] = []
    for symbol in sorted(input_syms, key=lambda s: (s.kind, s.slot, s.name)):
        shape = shape_of(symbol, analysis.points_to)
        if shape is None:
            segment.feasible = False
            segment.reject_reason = f"input {symbol.name} has unbounded shape"
            return
        shapes_in.append(shape)
    shapes_out: list[IOShape] = []
    for symbol in sorted(output_syms, key=lambda s: (s.kind, s.slot, s.name)):
        shape = shape_of(symbol, analysis.points_to)
        if shape is None:
            segment.feasible = False
            segment.reject_reason = f"output {symbol.name} has unbounded shape"
            return
        shapes_out.append(shape)

    shapes_in.sort(key=_io_sort_key)
    shapes_out.sort(key=_io_sort_key)
    segment.inputs = shapes_in
    segment.outputs = shapes_out

    if not segment.inputs:
        segment.feasible = False
        segment.reject_reason = "no inputs (nothing to key on)"
        return
    if not segment.outputs and not segment.has_retval:
        segment.feasible = False
        segment.reject_reason = "no outputs"
        return


def enumerate_segments(analysis: ProgramAnalysis) -> list[Segment]:
    """All candidate segments of the program, analyzed and feasibility
    checked.  Infeasible segments are kept (with reasons) for reporting —
    they are the "analyzed" population of Table 4."""
    segments: list[Segment] = []
    next_id = [0]

    def new_segment(kind: str, fn: ast.Function, region: ast.Block, control) -> None:
        segment = Segment(
            seg_id=next_id[0],
            kind=kind,
            func_name=fn.name,
            region_root=region,
            control=control,
        )
        next_id[0] += 1
        _analyze_segment(segment, analysis)
        segments.append(segment)

    for fn in analysis.program.functions:
        if fn.name == "main":
            # main's body runs once; the paper profiles routines and loops
            # *inside* the program, and memoizing main is meaningless.
            pass
        else:
            new_segment("function", fn, fn.body, fn)
        for node in ast.walk(fn.body):
            if isinstance(node, (ast.While, ast.DoWhile, ast.For)):
                new_segment("loop", fn, node.body, node)
            elif isinstance(node, ast.If):
                new_segment("if-branch", fn, node.then, node)
                if node.els is not None:
                    new_segment("if-branch", fn, node.els, node)
    return segments
