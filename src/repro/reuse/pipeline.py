"""The end-to-end computation-reuse pipeline (Figure 1 of the paper).

Steps, in order:

1. clean-up pass (split calls out of complex expressions);
2. whole-program analyses (pointer, mod/ref, CFGs, liveness);
3. candidate segment identification + input/output analysis;
4. static cost estimates (granularity lower bound, hashing-overhead upper
   bound) and the ``O/C < 1`` pre-filter;
5. *specialization*: function segments that fail the pre-filter but have
   call-site-invariant arguments get specialized clones, and the analysis
   round restarts once;
6. execution-frequency profiling (count-only run) filters infrequent
   segments;
7. value-set profiling of the survivors measures N, N_ds, the reuse rate
   R, and the per-execution granularity C;
8. the cost-benefit test ``R*C - O > 0`` (formula 3) keeps profitable
   segments;
9. the nesting graph picks at most one segment per nest (formula 4);
10. hash tables of segments with identical inputs are merged;
11. the transformation rewrites the selected segments and emits table
    specifications for the runtime.

The pipeline mutates (a cleaned copy of) the input program; the result
object carries everything the experiment harness and the examples need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import ConfigError
from ..minic import astnodes as ast
from ..minic.parser import parse_program
from ..minic.sema import analyze
from ..ir.cleanup import cleanup
from ..obs import DecisionLedger, get_tracer
from ..profiling.valueset import SegmentProfile, ValueSetProfiler
from ..runtime.compiler import compile_program
from ..runtime.costs import TABLES as _COST_TABLES
from ..runtime.governor import (
    GovernedMergedReuseTable,
    GovernedReuseTable,
    GovernorPolicy,
)
from ..runtime.hashtable import (
    SAMPLE_BUDGET as _SAMPLE_BUDGET,
    MergedReuseTable,
    ReuseTable,
    pow2_ceil as _pow2,
)
from ..runtime.machine import Machine
from . import cost_model
from .granularity import GranularityAnalysis
from .hashing_cost import annotate_costs
from .instrument import instrument_program, strip_instrumentation
from .merging import merge_groups
from .nesting import NestingGraph
from .segments import ProgramAnalysis, Segment, enumerate_segments
from .specialize import SpecializationRecord, Specializer
from .transform import ReuseTransformer, TableSpec


@dataclass(kw_only=True)
class PipelineConfig:
    """Tuning knobs for the pipeline (defaults follow the paper).

    Keyword-only: every knob must be named at the call site.  Invalid
    values raise :class:`~repro.errors.ConfigError` at construction time
    instead of failing deep inside table sizing or a profiling run.
    """

    # frequency filter: minimum dynamic executions for value profiling
    min_executions: int = 32
    # cost model evaluated against this table (profiling also runs on it)
    opt_level: str = "O0"
    enable_specialization: bool = True
    enable_merging: bool = True
    # extension beyond the paper (its §5 future work): consider parts of
    # bodies that were rejected as a whole (for I/O or escaping breaks)
    enable_subsegments: bool = False
    # ablation switches
    enable_nesting_selection: bool = True
    enable_cost_filter: bool = True
    # table sizing: capacity = distinct inputs / load factor (then rounded
    # up to a power of two); direct addressing wants plenty of slack
    load_factor: float = 0.25
    table_capacity_override: Optional[int] = None
    # optional memory budget for all reuse tables (bytes); lowest
    # gain-per-byte segments are dropped until the budget holds
    memory_budget_bytes: Optional[int] = None
    entry: str = "main"
    # thresholds emitted into every TableSpec for the online reuse
    # governor (repro.runtime.governor); only consulted by governed runs
    governor: GovernorPolicy = field(default_factory=GovernorPolicy)
    # hit-ratio ring-buffer capacity emitted into every TableSpec
    # (repro.runtime.hashtable.TableStats); >= 2
    stats_sample_budget: int = _SAMPLE_BUDGET

    def __post_init__(self) -> None:
        if self.opt_level not in _COST_TABLES:
            raise ConfigError(
                f"unknown opt_level {self.opt_level!r}; choose from {sorted(_COST_TABLES)}"
            )
        if not 0.0 < self.load_factor <= 1.0:
            raise ConfigError(f"load_factor must be in (0, 1], got {self.load_factor}")
        if self.min_executions < 0:
            raise ConfigError(f"min_executions must be >= 0, got {self.min_executions}")
        if self.table_capacity_override is not None and self.table_capacity_override < 1:
            raise ConfigError(
                f"table_capacity_override must be >= 1, got {self.table_capacity_override}"
            )
        if self.memory_budget_bytes is not None and self.memory_budget_bytes < 0:
            raise ConfigError(
                f"memory_budget_bytes must be >= 0, got {self.memory_budget_bytes}"
            )
        if not self.entry or not isinstance(self.entry, str):
            raise ConfigError(f"entry must be a non-empty function name, got {self.entry!r}")
        if not isinstance(self.governor, GovernorPolicy):
            raise ConfigError(
                f"governor must be a GovernorPolicy, got {type(self.governor).__name__}"
            )
        if self.stats_sample_budget < 2:
            raise ConfigError(
                f"stats_sample_budget must be >= 2, got {self.stats_sample_budget}"
            )


@dataclass
class PipelineResult:
    program: ast.Program
    segments: list[Segment]
    profiled: list[Segment]
    profitable: list[Segment]
    selected: list[Segment]
    table_specs: list[TableSpec]
    merged: dict[str, list[Segment]]
    specializations: list[SpecializationRecord]
    profiles: dict[int, SegmentProfile]
    dropped_for_memory: list[Segment] = field(default_factory=list)
    # why every candidate was kept or killed, stage by stage
    ledger: Optional[DecisionLedger] = None

    @property
    def counts(self) -> dict[str, int]:
        """The Table 4 counters: analyzed / profiled / transformed."""
        return {
            "analyzed": len(self.segments),
            "profiled": len(self.profiled),
            "transformed": len(self.selected),
        }

    def segment(self, seg_id: int) -> Segment:
        for segment in self.segments:
            if segment.seg_id == seg_id:
                return segment
        raise KeyError(seg_id)

    def total_table_bytes(self) -> int:
        return sum(spec_size_bytes(s, self) for s in self.table_specs)

    def build_tables(
        self,
        capacity_override: Optional[int] = None,
        governed: bool = False,
    ) -> dict[int, object]:
        """Instantiate the runtime reuse tables described by the specs.

        Returns {segment id: table or merged-table view} ready to install
        on a machine.  ``capacity_override`` (entries) supports the
        hash-table-size sweep of figures 14/15.  ``governed=True`` builds
        tables managed by the online reuse governor
        (:mod:`repro.runtime.governor`): each table (and each merged-table
        member) carries its segment's static ``C``/``O`` constants and the
        governor thresholds emitted into its spec.
        """
        tables: dict[int, object] = {}
        merged_built: dict[str, MergedReuseTable] = {}
        group_capacity: dict[str, int] = {}
        spec_by_id = {spec.segment_id: spec for spec in self.table_specs}
        for spec in self.table_specs:
            if spec.merged_group is not None:
                group_capacity[spec.merged_group] = max(
                    group_capacity.get(spec.merged_group, 1), spec.capacity
                )
        for spec in self.table_specs:
            capacity = capacity_override or spec.capacity
            policy = spec.governor or GovernorPolicy()
            sample_budget = spec.sample_budget
            if spec.merged_group is not None:
                group = merged_built.get(spec.merged_group)
                if group is None:
                    members = self.merged[spec.merged_group]
                    member_out_words = {
                        str(m.seg_id): m.out_words for m in members
                    }
                    group_cap = capacity_override or group_capacity[spec.merged_group]
                    if governed:
                        group = GovernedMergedReuseTable(
                            spec.merged_group,
                            capacity=group_cap,
                            in_words=members[0].in_words,
                            member_out_words=member_out_words,
                            member_costs={
                                str(m.seg_id): (
                                    spec_by_id[m.seg_id].granularity_cycles,
                                    spec_by_id[m.seg_id].overhead_cycles,
                                )
                                for m in members
                                if m.seg_id in spec_by_id
                            },
                            policy=policy,
                            sample_budget=sample_budget,
                        )
                    else:
                        group = MergedReuseTable(
                            spec.merged_group,
                            capacity=group_cap,
                            in_words=members[0].in_words,
                            member_out_words=member_out_words,
                            sample_budget=sample_budget,
                        )
                    merged_built[spec.merged_group] = group
                tables[spec.segment_id] = group.view(str(spec.segment_id))
            elif governed:
                tables[spec.segment_id] = GovernedReuseTable(
                    str(spec.segment_id),
                    capacity=capacity,
                    in_words=spec.in_words,
                    out_words=spec.out_words,
                    granularity=spec.granularity_cycles,
                    overhead=spec.overhead_cycles,
                    policy=policy,
                    sample_budget=sample_budget,
                )
            else:
                tables[spec.segment_id] = ReuseTable(
                    str(spec.segment_id),
                    capacity=capacity,
                    in_words=spec.in_words,
                    out_words=spec.out_words,
                    sample_budget=sample_budget,
                )
        return tables


def spec_size_bytes(spec: TableSpec, result: PipelineResult) -> int:
    cap = 1
    while cap < spec.capacity:
        cap <<= 1
    if spec.merged_group is not None:
        members = result.merged[spec.merged_group]
        bitvec = (len(members) + 31) // 32
        entry = members[0].in_words + bitvec + sum(m.out_words for m in members)
        # count the shared table once, attributed to the first member
        if spec.segment_id != members[0].seg_id:
            return 0
        return cap * entry * 4
    return cap * (spec.in_words + spec.out_words) * 4


class ReusePipeline:
    def __init__(self, source: str, config: Optional[PipelineConfig] = None) -> None:
        self.source = source
        self.config = config or PipelineConfig()

    # -- helpers ------------------------------------------------------------

    def _fresh_program(self) -> ast.Program:
        return analyze(parse_program(self.source))

    def _profiling_run(
        self,
        program: ast.Program,
        inputs: Sequence,
        mode: str,
        allowed: Optional[set[int]],
    ) -> ValueSetProfiler:
        machine = Machine(self.config.opt_level)
        machine.set_inputs(list(inputs))
        profiler = ValueSetProfiler(machine, mode=mode, allowed=allowed)
        machine.profiler = profiler
        compiled = compile_program(program, machine)
        with get_tracer().span(
            f"profile.{mode}",
            category="profiling",
            machine=machine,
            allowed=len(allowed) if allowed is not None else -1,
        ) as span:
            compiled.run(self.config.entry)
            if span is not None:
                span.args["segments_seen"] = len(profiler.profiles)
        return profiler

    # -- the pipeline ----------------------------------------------------------

    def run(self, inputs: Sequence = ()) -> PipelineResult:
        """Run the full Figure-1 pipeline.

        Every stage is traced through the process-local
        :class:`~repro.obs.Tracer` (a no-op unless tracing is enabled)
        and every candidate's fate is recorded in a
        :class:`~repro.obs.DecisionLedger` carried on the result.
        """
        config = self.config
        tracer = get_tracer()
        ledger = DecisionLedger()
        with tracer.span("pipeline.run", opt=config.opt_level):
            result = self._run_stages(inputs, tracer, ledger)
        return result

    def _run_stages(self, inputs: Sequence, tracer, ledger: DecisionLedger) -> PipelineResult:
        config = self.config
        with tracer.span("pipeline.analyze"):
            program = cleanup(self._fresh_program())

            # Round 1: analysis + optional specialization -------------------
            analysis = ProgramAnalysis(program)
            granularity = GranularityAnalysis(program)
            segments = enumerate_segments(analysis)
            annotate_costs(segments, granularity)
        specializations: list[SpecializationRecord] = []
        if config.enable_specialization:
            with tracer.span("pipeline.specialize") as span:
                failing = [
                    s
                    for s in segments
                    if s.feasible
                    and s.kind == "function"
                    and not cost_model.passes_prefilter(s.static_granularity, s.overhead)
                ]
                if failing:
                    specializer = Specializer(program, analysis.invariants)
                    for segment in failing:
                        specializer.specialize_function(segment.func_name)
                    if specializer.records:
                        specializations = specializer.records
                        analyze(program)
                        analysis = ProgramAnalysis(program)
                        granularity = GranularityAnalysis(program)
                        segments = enumerate_segments(analysis)
                        annotate_costs(segments, granularity)
                if span is not None:
                    span.args["specialized"] = len(specializations)

        # Sub-segment extension (the paper's §5 future work) -----------------
        if config.enable_subsegments:
            from .subsegments import enumerate_subsegments

            subs = enumerate_subsegments(
                analysis, segments, next_id=len(segments)
            )
            annotate_costs(subs, granularity)
            segments = segments + subs

        for segment in segments:
            ledger.open(segment)
            ledger.record(
                segment.seg_id,
                "feasibility",
                segment.feasible,
                reason=segment.reject_reason or "ok",
            )

        # Pre-filter ------------------------------------------------------------
        with tracer.span("pipeline.prefilter") as span:
            candidates = [s for s in segments if s.feasible]
            for segment in candidates:
                if segment.static_granularity > 0.0:
                    ratio = segment.overhead / segment.static_granularity
                    margin = 1.0 - ratio
                else:
                    ratio, margin = None, -1.0
                passes = cost_model.passes_prefilter(
                    segment.static_granularity, segment.overhead
                )
                ledger.record(
                    segment.seg_id,
                    "prefilter",
                    passes or not config.enable_cost_filter,
                    margin=margin,
                    C=segment.static_granularity,
                    O=segment.overhead,
                    OC=ratio if ratio is not None else "inf",
                )
            if config.enable_cost_filter:
                candidates = [
                    s
                    for s in candidates
                    if cost_model.passes_prefilter(s.static_granularity, s.overhead)
                ]
            if span is not None:
                span.args["candidates"] = len(candidates)

        # Frequency profiling -----------------------------------------------------
        instrument_program(candidates, program)
        freq = self._profiling_run(program, inputs, mode="freq", allowed=None)
        frequent_ids = {
            seg_id
            for seg_id, profile in freq.profiles.items()
            if profile.executions >= config.min_executions
        }
        for segment in candidates:
            freq_profile = freq.profiles.get(segment.seg_id)
            executions = freq_profile.executions if freq_profile is not None else 0
            ledger.record(
                segment.seg_id,
                "frequency",
                segment.seg_id in frequent_ids,
                margin=float(executions - config.min_executions),
                executions=executions,
                required=config.min_executions,
            )
        profiled = [s for s in candidates if s.seg_id in frequent_ids]

        # Value-set profiling -------------------------------------------------------
        profiler = self._profiling_run(
            program, inputs, mode="value", allowed=frequent_ids
        )
        strip_instrumentation(program)
        profiles: dict[int, SegmentProfile] = {}
        for segment in profiled:
            profile = profiler.profile(segment.seg_id)
            profiles[segment.seg_id] = profile
            segment.executions = profile.executions
            segment.distinct_inputs = profile.distinct_inputs
            segment.reuse_rate = profile.reuse_rate
            segment.measured_granularity = profile.mean_cycles
            # "we can count the hash collision rate for each value set and
            # deduct the reuse rate accordingly" (§2.1): estimate the hit
            # rate the planned table can actually deliver
            adjusted = _collision_adjusted_rate(
                profile, _capacity_for(segment, config)
            )
            segment.gain = cost_model.gain(
                segment.measured_granularity, segment.overhead, adjusted
            )

            # Cost-benefit test (formula 3), recorded per segment ------------
            profitable_here = (
                segment.gain > 0.0
                if config.enable_cost_filter
                else segment.executions > 0
            )
            ledger.record(
                segment.seg_id,
                "formula3",
                profitable_here,
                margin=segment.gain,
                N=profile.executions,
                N_ds=profile.distinct_inputs,
                R=profile.reuse_rate,
                R_adj=adjusted,
                C=segment.measured_granularity,
                O=segment.overhead,
            )

        if config.enable_cost_filter:
            profitable = [s for s in profiled if s.gain > 0.0]
        else:
            profitable = [s for s in profiled if s.executions > 0]

        # Nesting selection (formulas in section 2.3) -----------------------------------
        with tracer.span("pipeline.nesting") as span:
            if config.enable_nesting_selection and profitable:
                graph = NestingGraph(profitable, analysis)
                selected = graph.select()
                for seg_id, info in graph.explain().items():
                    detail = {k: v for k, v in info.items() if k != "margin"}
                    ledger.record(
                        seg_id,
                        "nesting",
                        info["reason"] == "selected",
                        margin=info["margin"],
                        **detail,
                    )
            else:
                selected = list(profitable)
                for segment in selected:
                    segment.selected = True
                    ledger.record(
                        segment.seg_id, "nesting", True, reason="disabled"
                    )
            if span is not None:
                span.args["selected"] = len(selected)

        # Merging --------------------------------------------------------------------------
        merged: dict[str, list[Segment]] = {}
        if config.enable_merging:
            merged = merge_groups(selected)
            for group_id, members in merged.items():
                for member in members:
                    ledger.record(
                        member.seg_id,
                        "merging",
                        True,
                        group=group_id,
                        members=len(members),
                    )

        # Memory budget: drop lowest-value segments before transforming so
        # the emitted program never probes a table we refused to build
        # (the paper's unmerged GNU Go tables "run out of memory").
        dropped: list[Segment] = []
        if config.memory_budget_bytes is not None:
            with tracer.span("pipeline.budget") as span:
                dropped = _enforce_budget(
                    selected, merged, config, config.memory_budget_bytes
                )
                kept_scores = [s.gain * max(1, s.executions) for s in selected]
                floor = min(kept_scores) if kept_scores else 0.0
                for segment in dropped:
                    score = segment.gain * max(1, segment.executions)
                    ledger.record(
                        segment.seg_id,
                        "budget",
                        False,
                        margin=score - floor,
                        score=score,
                        budget_bytes=config.memory_budget_bytes,
                    )
                if span is not None:
                    span.args["dropped"] = len(dropped)

        # Transformation ----------------------------------------------------------------------
        with tracer.span("pipeline.transform") as span:
            transformer = ReuseTransformer(program, analysis)
            specs: list[TableSpec] = []
            for segment in selected:
                spec = transformer.transform_segment(segment)
                spec.capacity = _capacity_for(segment, config)
                # compile-time half of the online governor: the guard
                # carries the measured C, the O upper bound, and the
                # thresholds the runtime state machine enforces
                spec.governor = config.governor
                spec.sample_budget = config.stats_sample_budget
                specs.append(spec)
                ledger.record(
                    segment.seg_id,
                    "selected",
                    True,
                    margin=segment.gain,
                    capacity=spec.capacity,
                    merged_group=spec.merged_group or "",
                )
            if span is not None:
                span.args["transformed"] = len(specs)

        tracer.event(
            "pipeline.counts",
            category="pipeline",
            analyzed=len(segments),
            profiled=len(profiled),
            transformed=len(selected),
        )
        return PipelineResult(
            program=program,
            segments=segments,
            profiled=profiled,
            profitable=profitable,
            selected=selected,
            table_specs=specs,
            merged=merged,
            specializations=specializations,
            profiles=profiles,
            dropped_for_memory=dropped,
            ledger=ledger,
        )


def _collision_adjusted_rate(profile: SegmentProfile, capacity: int) -> float:
    """The reuse rate deliverable by a direct-addressed, replace-on-
    collision table of the given capacity.

    Keys that share an entry fight for it; under replacement, at best the
    dominant key of each entry keeps its record, so the deliverable hits
    are at most sum(dominant_count - 1) over occupied entries.  With no
    collisions this equals N - N_ds, i.e. the raw reuse rate.
    """
    if profile.executions == 0:
        return 0.0
    from ..runtime.jenkins import hash_key_words

    mask = _pow2(max(1, capacity)) - 1
    dominant: dict[int, int] = {}
    for key, count in profile.value_counts.items():
        entry = hash_key_words(key) & mask
        if count > dominant.get(entry, 0):
            dominant[entry] = count
    hits = sum(count - 1 for count in dominant.values())
    return max(0.0, hits / profile.executions)


def _capacity_for(segment: Segment, config: PipelineConfig) -> int:
    if config.table_capacity_override is not None:
        return config.table_capacity_override
    return max(1, int(segment.distinct_inputs / config.load_factor))


def _table_bytes(selected: list[Segment], merged: dict, config: PipelineConfig) -> int:
    total = 0
    counted_groups: set[str] = set()
    for segment in selected:
        cap = _pow2(_capacity_for(segment, config))
        if segment.merged_group is not None and segment.merged_group in merged:
            if segment.merged_group in counted_groups:
                continue
            counted_groups.add(segment.merged_group)
            members = [m for m in merged[segment.merged_group] if m in selected]
            if not members:
                continue
            bitvec = (len(members) + 31) // 32
            entry = members[0].in_words + bitvec + sum(m.out_words for m in members)
            cap = max(_pow2(_capacity_for(m, config)) for m in members)
            total += cap * entry * 4
        else:
            total += cap * (segment.in_words + segment.out_words) * 4
    return total


def _enforce_budget(
    selected: list[Segment],
    merged: dict[str, list[Segment]],
    config: PipelineConfig,
    budget: int,
) -> list[Segment]:
    """Drop lowest-total-gain segments (in place) until the tables fit."""
    dropped: list[Segment] = []
    while selected and _table_bytes(selected, merged, config) > budget:
        worst = min(
            selected, key=lambda s: s.gain * max(1, s.executions)
        )
        selected.remove(worst)
        worst.selected = False
        dropped.append(worst)
        if worst.merged_group is not None and worst.merged_group in merged:
            group_id = worst.merged_group
            group = merged[group_id]
            group.remove(worst)
            worst.merged_group = None
            if len(group) == 1:
                # a single survivor no longer needs a merged table
                group[0].merged_group = None
                del merged[group_id]
    return dropped
