"""Hashing-overhead analysis: the upper bound O for one probe.

"The hashing overhead depends mainly on the complexity of the hash
function and the size of each set of inputs and outputs. [...] The time
taken to determine whether we have a hit is proportional to the size of
the input. [...] the cost of copying is proportional to the size of the
output.  Note that a hit and a miss have the same number of extra
operations."

The estimate mirrors exactly what the runtime intrinsics charge, plus the
cost of evaluating the key arguments and storing the restored outputs, so
the cost model and the measured execution agree by construction:

    O = HASH_FIXED                       (index computation, entry access)
      + HASH_WORD * in_words             (key build + compare)
      + HASH_WORD * out_words            (output copy, either direction)
      + read cost  * input variables     (feeding the key builder)
      + write cost * output variables    (restoring outputs on a hit)
      + BRANCH                           (the hit/miss dispatch)
"""

from __future__ import annotations

from typing import Optional

from ..runtime import costs
from ..runtime.costs import CostTable
from .segments import Segment


def hashing_overhead(segment: Segment, cost_table: Optional[CostTable] = None) -> float:
    cost = cost_table or costs.O0
    c = cost.cycles
    in_words = segment.in_words
    out_words = segment.out_words
    overhead = (
        c[costs.HASH_FIXED]
        + c[costs.HASH_WORD] * in_words
        + c[costs.HASH_WORD] * out_words
        + c[costs.BRANCH]
    )
    for shape in segment.inputs:
        overhead += c[costs.MEM_RD] if shape.is_array else c[costs.LOCAL_RD]
    for shape in segment.outputs:
        overhead += c[costs.MEM_WR] if shape.is_array else c[costs.LOCAL_WR]
    if segment.has_retval:
        overhead += c[costs.LOCAL_WR]
    return float(overhead)


def annotate_costs(
    segments: list[Segment],
    granularity,
    cost_table: Optional[CostTable] = None,
) -> None:
    """Fill static_granularity and overhead on every feasible segment."""
    for segment in segments:
        if not segment.feasible:
            continue
        segment.static_granularity = granularity.region_cycles(segment.region_root)
        segment.overhead = hashing_overhead(segment, cost_table)
