"""Profiling instrumentation: inserting and stripping the value-set
profiling stubs ("profiling code stubs can be inserted to record its
distinct sets of input values").

For each candidate segment the instrumenter inserts, at region entry::

    __seg_enter(<id>);          // granularity timing (zero cost)
    __profile(<id>, in1, ...);  // value-set capture (zero cost)

and ``__seg_exit(<id>)`` at every region exit (the region end, and before
every ``return`` for function-body segments).  All generated names carry
their resolved symbols, so the program needs no re-analysis — symbol
identity is preserved across the whole pipeline.

``strip_instrumentation`` removes every stub again, leaving the original
statements (and the segments' region blocks) intact.
"""

from __future__ import annotations

from ..minic import astnodes as ast
from .segments import Segment

_STUB_NAMES = frozenset({"__seg_enter", "__seg_exit", "__profile"})


def _call(name: str, args: list[ast.Expr]) -> ast.ExprStmt:
    return ast.ExprStmt(expr=ast.Call(func=ast.Name(name=name), args=args))


def _input_expr(shape, segment: Segment, program: ast.Program) -> ast.Expr:
    """A Name expression reading one segment input (symbol pre-resolved)."""
    symbol = shape.symbol
    if symbol.kind == "global" or symbol.func_name == segment.func_name:
        return ast.Name(name=symbol.name, symbol=symbol)
    # a foreign local reachable only through a pointer parameter
    fn = program.function(segment.func_name)
    for param in fn.params:
        if param.symbol is not None and param.symbol.type.is_pointer:
            return ast.Name(name=param.name, symbol=param.symbol)
    raise ValueError(f"segment {segment.seg_id}: cannot access input {symbol.name}")


def instrument_segment(segment: Segment, program: ast.Program) -> None:
    seg = ast.IntLit(value=segment.seg_id)
    inputs = [_input_expr(shape, segment, program) for shape in segment.inputs]
    enter = _call("__seg_enter", [seg])
    profile = _call("__profile", [ast.IntLit(value=segment.seg_id)] + inputs)
    exit_stub = lambda: _call("__seg_exit", [ast.IntLit(value=segment.seg_id)])

    block = segment.region_root
    if segment.kind == "function":
        _instrument_returns(block, segment.seg_id)
        block.stmts = [enter, profile] + block.stmts + [exit_stub()]
    else:
        block.stmts = [enter, profile] + block.stmts + [exit_stub()]


def _instrument_returns(block: ast.Block, seg_id: int) -> None:
    """Insert __seg_exit before every return nested in the block."""

    def rewrite(stmts: list[ast.Stmt]) -> list[ast.Stmt]:
        result: list[ast.Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, ast.Return):
                result.append(_call("__seg_exit", [ast.IntLit(value=seg_id)]))
                result.append(stmt)
                continue
            _descend(stmt)
            result.append(stmt)
        return result

    def _descend(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            stmt.stmts = rewrite(stmt.stmts)
        elif isinstance(stmt, ast.If):
            stmt.then.stmts = rewrite(stmt.then.stmts)
            if stmt.els is not None:
                stmt.els.stmts = rewrite(stmt.els.stmts)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            stmt.body.stmts = rewrite(stmt.body.stmts)
        elif isinstance(stmt, ast.For):
            stmt.body.stmts = rewrite(stmt.body.stmts)

    block.stmts = rewrite(block.stmts)


def instrument_program(segments: list[Segment], program: ast.Program) -> None:
    """Instrument every given segment (call once; not idempotent)."""
    for segment in segments:
        instrument_segment(segment, program)


def _is_stub(stmt: ast.Stmt) -> bool:
    return (
        isinstance(stmt, ast.ExprStmt)
        and isinstance(stmt.expr, ast.Call)
        and isinstance(stmt.expr.func, ast.Name)
        and stmt.expr.func.name in _STUB_NAMES
    )


def strip_instrumentation(program: ast.Program) -> int:
    """Remove all profiling stubs; returns the number removed."""
    removed = 0
    for fn in program.functions:
        for node in ast.walk(fn.body):
            if isinstance(node, ast.Block):
                kept = [s for s in node.stmts if not _is_stub(s)]
                removed += len(node.stmts) - len(kept)
                node.stmts = kept
            elif isinstance(node, ast.If):
                for branch in (node.then, node.els):
                    if branch is not None:
                        kept = [s for s in branch.stmts if not _is_stub(s)]
                        removed += len(branch.stmts) - len(kept)
                        branch.stmts = kept
    return removed
