"""Hash-table merging (section 2.5).

Segments with identical input variables can share one table: the key is
stored once, and a per-entry bit vector records which member segments'
outputs are valid for that key.  This is what makes GNU Go's eight
``accumulate_influence`` segments fit in the iPAQ's memory in the paper.

Identity of input variables means the *same symbols in the same order* —
the case that arises naturally for sibling segments of one function.
"""

from __future__ import annotations

from .segments import Segment


def merge_groups(selected: list[Segment]) -> dict[str, list[Segment]]:
    """Assign ``merged_group`` ids to segments with identical inputs.

    Returns {group id: members} for every group of two or more segments.
    """
    by_inputs: dict[tuple, list[Segment]] = {}
    for segment in selected:
        key = tuple(shape.symbol.uid for shape in segment.inputs)
        by_inputs.setdefault(key, []).append(segment)
    groups: dict[str, list[Segment]] = {}
    for members in by_inputs.values():
        if len(members) < 2:
            continue
        members.sort(key=lambda s: s.seg_id)
        group_id = f"merged{members[0].seg_id}"
        for member in members:
            member.merged_group = group_id
        groups[group_id] = members
    return groups


def merged_size_bytes(members: list[Segment], capacity: int) -> int:
    """Size of the merged table for ``members`` at the given capacity."""
    in_words = members[0].in_words
    bitvec_words = (len(members) + 31) // 32
    out_words = sum(m.out_words for m in members)
    entry_words = in_words + bitvec_words + out_words
    cap = 1
    while cap < capacity:
        cap <<= 1
    return cap * entry_words * 4


def unmerged_size_bytes(members: list[Segment], capacity: int) -> int:
    """Total size of per-segment tables for the same segments."""
    total = 0
    cap = 1
    while cap < capacity:
        cap <<= 1
    for member in members:
        total += cap * (member.in_words + member.out_words) * 4
    return total
