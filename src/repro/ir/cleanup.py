"""Clean-up pass: split function calls out of complex expressions.

The paper's GCC implementation runs a clean-up module so that "each
function call in a complex expression is split from the expression in
order to simplify the interprocedural analysis".  We do the same at the
AST level: a call nested inside a larger expression is hoisted into its
own temporary assignment immediately before the statement::

    x = f(a) + g(b);    ==>    int __cu0 = f(a);
                               int __cu1 = g(b);
                               x = __cu0 + __cu1;

Hoisting happens only where it preserves semantics without restructuring
control flow: expression statements, declaration initializers, ``return``
values, and ``if`` conditions.  Calls under short-circuit operators,
ternaries, and loop conditions/steps are left in place (their conditional
or repeated evaluation cannot be hoisted), as are calls that are already
the entire right-hand side.

Run on a *resolved* program (types are needed to declare the temporaries);
re-run :func:`repro.minic.sema.analyze` afterwards.
"""

from __future__ import annotations


from ..minic import astnodes as ast
from ..minic.builtins import BUILTINS
from ..minic.sema import Typer, analyze
from ..minic.types import VOID, Type

_TEMP_PREFIX = "__cu"


class CleanupPass:
    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.typer = Typer(program)
        self._counter = 0
        self.hoisted = 0  # number of calls split out (for tests/reporting)

    def run(self) -> ast.Program:
        for fn in self.program.functions:
            self._clean_block(fn.body)
        analyze(self.program)
        return self.program

    def _fresh_name(self) -> str:
        name = f"{_TEMP_PREFIX}{self._counter}"
        self._counter += 1
        return name

    # -- statement walking ----------------------------------------------------

    def _clean_block(self, block: ast.Block) -> None:
        new_stmts: list[ast.Stmt] = []
        for stmt in block.stmts:
            prefix: list[ast.Stmt] = []
            self._clean_stmt(stmt, prefix)
            new_stmts.extend(prefix)
            new_stmts.append(stmt)
        block.stmts = new_stmts

    def _clean_stmt(self, stmt: ast.Stmt, prefix: list[ast.Stmt]) -> None:
        if isinstance(stmt, ast.ExprStmt):
            stmt.expr = self._hoist(stmt.expr, prefix, is_root=True)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                if decl.init is not None:
                    decl.init = self._hoist(decl.init, prefix, is_root=True)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                stmt.value = self._hoist(stmt.value, prefix, is_root=True)
        elif isinstance(stmt, ast.If):
            stmt.cond = self._hoist(stmt.cond, prefix, is_root=False)
            self._clean_block(stmt.then)
            if stmt.els is not None:
                self._clean_block(stmt.els)
        elif isinstance(stmt, ast.Block):
            self._clean_block(stmt)
        elif isinstance(stmt, ast.While):
            self._clean_block(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            self._clean_block(stmt.body)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._clean_stmt(stmt.init, prefix)
            self._clean_block(stmt.body)
        # Break/Continue: nothing to do.

    # -- expression hoisting -----------------------------------------------------

    def _hoist(self, expr: ast.Expr, prefix: list[ast.Stmt], is_root: bool) -> ast.Expr:
        """Hoist nested calls out of ``expr``; returns the rewritten expr.

        ``is_root`` marks positions where a call may legitimately remain as
        the entire expression (statement expression, direct initializer,
        return value, direct assignment RHS).
        """
        if isinstance(expr, ast.Call):
            # First hoist calls out of the arguments.
            expr.args = [self._hoist(a, prefix, is_root=False) for a in expr.args]
            if is_root or self._is_trivial_builtin(expr):
                return expr
            return self._hoist_call(expr, prefix)
        if isinstance(expr, ast.Assign):
            expr.target = self._hoist(expr.target, prefix, is_root=False)
            # A direct `x = f(...)` RHS stays in place only for simple `=`.
            rhs_root = is_root and expr.op == "="
            expr.value = self._hoist(expr.value, prefix, is_root=rhs_root)
            return expr
        if isinstance(expr, ast.Binary):
            expr.lhs = self._hoist(expr.lhs, prefix, is_root=False)
            expr.rhs = self._hoist(expr.rhs, prefix, is_root=False)
            return expr
        if isinstance(expr, ast.Unary):
            expr.operand = self._hoist(expr.operand, prefix, is_root=False)
            return expr
        if isinstance(expr, ast.Index):
            expr.base = self._hoist(expr.base, prefix, is_root=False)
            expr.index = self._hoist(expr.index, prefix, is_root=False)
            return expr
        if isinstance(expr, ast.IncDec):
            return expr
        # Logical / Ternary arms are conditionally evaluated: only the
        # unconditionally-evaluated condition / lhs may be hoisted from.
        if isinstance(expr, ast.Logical):
            expr.lhs = self._hoist(expr.lhs, prefix, is_root=False)
            return expr
        if isinstance(expr, ast.Ternary):
            expr.cond = self._hoist(expr.cond, prefix, is_root=False)
            return expr
        return expr

    def _is_trivial_builtin(self, call: ast.Call) -> bool:
        """Casts and pure helpers need not be split — they have no
        interprocedural effects for the analyses to worry about."""
        if isinstance(call.func, ast.Name) and call.func.symbol is None:
            return call.func.name in BUILTINS
        return False

    def _hoist_call(self, call: ast.Call, prefix: list[ast.Stmt]) -> ast.Expr:
        ret_type = self._return_type(call)
        if ret_type == VOID or not ret_type.is_scalar and not ret_type.is_pointer:
            return call  # cannot name the result; leave in place
        name = self._fresh_name()
        decl = ast.VarDecl(name=name, type=ret_type, init=call, line=call.line)
        prefix.append(ast.DeclStmt(decls=[decl], line=call.line))
        self.hoisted += 1
        return ast.Name(name=name, line=call.line)

    def _return_type(self, call: ast.Call) -> Type:
        try:
            return self.typer.type_of(call)
        except Exception:
            return VOID


def cleanup(program: ast.Program) -> ast.Program:
    """Run the clean-up pass in place; returns the (re-analyzed) program."""
    return CleanupPass(program).run()
