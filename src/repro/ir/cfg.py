"""Statement-level control-flow graph construction for mini-C functions.

Every simple statement (declaration, expression statement, return) becomes
one node; structured control flow contributes *condition* nodes (and, for
``for`` loops, *init* and *step* nodes).  Each node records an ``owner``
AST statement: for condition/step nodes the owner is the control statement
itself, which is what lets region queries ("which CFG nodes lie inside
this loop body?") give the paper's segment boundaries exactly — a loop's
condition is *outside* its body segment.

The CFG drives the dataflow analyses (liveness at segment exits,
upward-exposed reads at segment entries, reaching definitions for def-use
chains, and the code-coverage/invariance analysis of section 2.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..errors import AnalysisError
from ..minic import astnodes as ast

ENTRY = "entry"
EXIT = "exit"
STMT = "stmt"
COND = "cond"
STEP = "step"


@dataclass(eq=False)
class CFGNode:
    nid: int
    kind: str
    ast_node: Optional[ast.Node]  # stmt for STMT, expr for COND/STEP
    owner: Optional[ast.Stmt]  # enclosing statement determining region membership
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<cfg#{self.nid} {self.kind}>"


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, func: ast.Function) -> None:
        self.func = func
        self.nodes: list[CFGNode] = []
        self.entry = self._new_node(ENTRY, None, None).nid
        self.exit = self._new_node(EXIT, None, None).nid

    def _new_node(self, kind: str, ast_node, owner) -> CFGNode:
        node = CFGNode(nid=len(self.nodes), kind=kind, ast_node=ast_node, owner=owner)
        self.nodes.append(node)
        return node

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)
            self.nodes[dst].preds.append(src)

    def node(self, nid: int) -> CFGNode:
        return self.nodes[nid]

    def __iter__(self) -> Iterator[CFGNode]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    # -- region queries ------------------------------------------------------

    def nodes_in_region(self, region_root: ast.Node) -> set[int]:
        """CFG node ids whose owner statement lies inside ``region_root``
        (inclusive).  For a loop *body* region pass the body block: the
        loop's own condition/step nodes stay outside."""
        inside = set(id(n) for n in ast.walk(region_root))
        return {
            node.nid
            for node in self.nodes
            if node.owner is not None and id(node.owner) in inside
        }

    def region_entries(self, region: set[int]) -> set[int]:
        """Nodes in the region with a predecessor outside it (or none)."""
        result = set()
        for nid in region:
            preds = self.nodes[nid].preds
            if not preds or any(p not in region for p in preds):
                result.add(nid)
        return result

    def region_exit_targets(self, region: set[int]) -> set[int]:
        """Nodes *outside* the region that are successors of region nodes."""
        result = set()
        for nid in region:
            for succ in self.nodes[nid].succs:
                if succ not in region:
                    result.add(succ)
        return result

    def reverse_postorder(self) -> list[int]:
        seen: set[int] = set()
        order: list[int] = []
        stack: list[tuple[int, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            nid, idx = stack[-1]
            succs = self.nodes[nid].succs
            if idx < len(succs):
                stack[-1] = (nid, idx + 1)
                succ = succs[idx]
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, 0))
            else:
                stack.pop()
                order.append(nid)
        order.reverse()
        return order


class _Builder:
    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        # (break_targets, continue_targets) stacks: lists of node ids that
        # must be wired once the construct's join points are known.
        self.break_stack: list[list[int]] = []
        self.continue_stack: list[list[int]] = []

    def build(self) -> None:
        frontier = self._build_block(self.cfg.func.body, [self.cfg.entry])
        for nid in frontier:
            self.cfg.add_edge(nid, self.cfg.exit)

    # Each _build_* takes the list of current frontier nodes (whose control
    # falls through into the construct) and returns the new frontier.

    def _build_block(self, block: ast.Block, frontier: list[int]) -> list[int]:
        for stmt in block.stmts:
            frontier = self._build_stmt(stmt, frontier)
        return frontier

    def _link(self, node: CFGNode, frontier: list[int]) -> None:
        for nid in frontier:
            self.cfg.add_edge(nid, node.nid)

    def _build_stmt(self, stmt: ast.Stmt, frontier: list[int]) -> list[int]:
        cfg = self.cfg
        if isinstance(stmt, (ast.DeclStmt, ast.ExprStmt)):
            node = cfg._new_node(STMT, stmt, stmt)
            self._link(node, frontier)
            return [node.nid]
        if isinstance(stmt, ast.Block):
            return self._build_block(stmt, frontier)
        if isinstance(stmt, ast.Return):
            node = cfg._new_node(STMT, stmt, stmt)
            self._link(node, frontier)
            cfg.add_edge(node.nid, cfg.exit)
            return []
        if isinstance(stmt, ast.Break):
            node = cfg._new_node(STMT, stmt, stmt)
            self._link(node, frontier)
            if not self.break_stack:
                raise AnalysisError("break outside of a loop")
            self.break_stack[-1].append(node.nid)
            return []
        if isinstance(stmt, ast.Continue):
            node = cfg._new_node(STMT, stmt, stmt)
            self._link(node, frontier)
            if not self.continue_stack:
                raise AnalysisError("continue outside of a loop")
            self.continue_stack[-1].append(node.nid)
            return []
        if isinstance(stmt, ast.If):
            cond = cfg._new_node(COND, stmt.cond, stmt)
            self._link(cond, frontier)
            then_out = self._build_block(stmt.then, [cond.nid])
            if stmt.els is None:
                return then_out + [cond.nid]
            else_out = self._build_block(stmt.els, [cond.nid])
            return then_out + else_out
        if isinstance(stmt, ast.While):
            cond = cfg._new_node(COND, stmt.cond, stmt)
            self._link(cond, frontier)
            self.break_stack.append([])
            self.continue_stack.append([])
            body_out = self._build_block(stmt.body, [cond.nid])
            for nid in body_out + self.continue_stack.pop():
                cfg.add_edge(nid, cond.nid)
            return [cond.nid] + self.break_stack.pop()
        if isinstance(stmt, ast.DoWhile):
            self.break_stack.append([])
            self.continue_stack.append([])
            # A placeholder edge source for the back edge: build body first.
            body_in_marker = len(cfg.nodes)
            body_out = self._build_block(stmt.body, frontier)
            cond = cfg._new_node(COND, stmt.cond, stmt)
            for nid in body_out + self.continue_stack.pop():
                cfg.add_edge(nid, cond.nid)
            # back edge: cond -> first node created for the body (if any)
            if body_in_marker < cond.nid:
                cfg.add_edge(cond.nid, body_in_marker)
            return [cond.nid] + self.break_stack.pop()
        if isinstance(stmt, ast.For):
            if stmt.init is not None:
                init = cfg._new_node(STMT, stmt.init, stmt)
                self._link(init, frontier)
                frontier = [init.nid]
            if stmt.cond is not None:
                cond = cfg._new_node(COND, stmt.cond, stmt)
                self._link(cond, frontier)
                loop_head = cond.nid
                exits = [cond.nid]
            else:
                # no condition: synthesize an always-true condition node so
                # the loop structure stays uniform
                cond = cfg._new_node(COND, None, stmt)
                self._link(cond, frontier)
                loop_head = cond.nid
                exits = []
            self.break_stack.append([])
            self.continue_stack.append([])
            body_out = self._build_block(stmt.body, [loop_head])
            continues = self.continue_stack.pop()
            if stmt.step is not None:
                step = cfg._new_node(STEP, stmt.step, stmt)
                for nid in body_out + continues:
                    cfg.add_edge(nid, step.nid)
                cfg.add_edge(step.nid, loop_head)
            else:
                for nid in body_out + continues:
                    cfg.add_edge(nid, loop_head)
            return exits + self.break_stack.pop()
        raise AnalysisError(f"cannot build CFG for {type(stmt).__name__}")


def build_cfg(func: ast.Function) -> CFG:
    """Build the control-flow graph of one function."""
    cfg = CFG(func)
    _Builder(cfg).build()
    return cfg
