"""Interprocedural call graph construction.

"In the call graph construction, we take into account function pointers
and recursive functions.  For recursive functions we compute their
strongly-connected-component."

Indirect call sites are resolved through the points-to analysis; SCCs come
from :mod:`repro.ir.scc`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..minic import astnodes as ast
from ..analysis.pointer import PointsTo
from .scc import condense, strongly_connected_components


@dataclass
class CallSite:
    caller: str
    call: ast.Call
    callees: frozenset  # of function names
    line: int


class CallGraph:
    def __init__(self, program: ast.Program, points_to: Optional[PointsTo] = None) -> None:
        self.program = program
        self.points_to = points_to or PointsTo(program)
        self.edges: dict[str, set[str]] = {fn.name: set() for fn in program.functions}
        self.call_sites: list[CallSite] = []
        self._build()

    def _build(self) -> None:
        for fn in self.program.functions:
            for node in ast.walk(fn.body):
                if not isinstance(node, ast.Call):
                    continue
                callees = frozenset(self.points_to.call_targets(node))
                if callees:
                    self.call_sites.append(
                        CallSite(caller=fn.name, call=node, callees=callees, line=node.line)
                    )
                    self.edges[fn.name].update(callees)

    # -- queries ---------------------------------------------------------------

    def callees(self, name: str) -> set[str]:
        return set(self.edges.get(name, ()))

    def callers(self, name: str) -> set[str]:
        return {caller for caller, callees in self.edges.items() if name in callees}

    def sites_calling(self, name: str) -> list[CallSite]:
        return [site for site in self.call_sites if name in site.callees]

    def sccs(self) -> list[list[str]]:
        """SCCs in reverse topological order (callees before callers)."""
        return strongly_connected_components(self.edges)

    def recursive_functions(self) -> set[str]:
        """Functions involved in recursion (self- or mutual)."""
        result: set[str] = set()
        for component in self.sccs():
            if len(component) > 1:
                result.update(component)
            elif component[0] in self.edges.get(component[0], ()):
                result.add(component[0])
        return result

    def condensation(self):
        """(component_of, members, dag) over function names."""
        return condense(self.edges)

    def reachable_from(self, root: str) -> set[str]:
        seen = {root}
        stack = [root]
        while stack:
            name = stack.pop()
            for callee in self.edges.get(name, ()):
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return seen


def build_callgraph(program: ast.Program, points_to: Optional[PointsTo] = None) -> CallGraph:
    return CallGraph(program, points_to)
