"""IR layer: CFGs, call graphs, SCCs, def-use chains, clean-up."""

from .callgraph import CallGraph, CallSite, build_callgraph
from .cfg import CFG, CFGNode, COND, ENTRY, EXIT, STEP, STMT, build_cfg
from .cleanup import CleanupPass, cleanup
from .defuse import Chain, DefUseChains, build_defuse
from .scc import condense, strongly_connected_components, topological_order

__all__ = [
    "CallGraph",
    "CallSite",
    "build_callgraph",
    "CFG",
    "CFGNode",
    "build_cfg",
    "ENTRY",
    "EXIT",
    "STMT",
    "COND",
    "STEP",
    "CleanupPass",
    "cleanup",
    "Chain",
    "DefUseChains",
    "build_defuse",
    "condense",
    "strongly_connected_components",
    "topological_order",
]
