"""Def-use chain construction.

Chains link each use of a symbol at a CFG node to the definitions that may
reach it (reaching-definitions based).  The *global* flavor of the paper —
"a definition in one procedure may be used in another procedure through
pointers or global variables" — comes from the MOD/REF call-site effects
folded into the per-node use/def sets: a call node that may modify a
global is itself a (weak) definition site in the caller's chains.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..minic import astnodes as ast
from ..analysis.reaching import ReachingDefinitions
from ..analysis.usedef import UseDefExtractor
from .cfg import CFG, build_cfg


@dataclass(frozen=True)
class Chain:
    """One def-use link: definition node -> use node, for a symbol.

    ``def_node == cfg.entry`` denotes the entry pseudo-definition
    (parameter values / global initial values)."""

    symbol: ast.Symbol
    def_node: int
    use_node: int


class DefUseChains:
    def __init__(self, cfg: CFG, extractor: UseDefExtractor) -> None:
        self.cfg = cfg
        entry_symbols: set = set()
        for param in cfg.func.params:
            if param.symbol is not None:
                entry_symbols.add(param.symbol)
        # globals are defined-at-entry too
        entry_symbols.update(extractor.global_symbols)
        self.reaching = ReachingDefinitions(cfg, extractor, frozenset(entry_symbols))
        self.chains: list[Chain] = []
        self._by_use: dict[tuple[int, ast.Symbol], list[Chain]] = {}
        self._by_def: dict[tuple[int, ast.Symbol], list[Chain]] = {}
        self._build()

    def _build(self) -> None:
        for node in self.cfg:
            ud = self.reaching.use_def(node.nid)
            if ud is None:
                continue
            for symbol in ud.uses:
                for def_node, _ in self.reaching.defs_reaching_use(node.nid, symbol):
                    chain = Chain(symbol=symbol, def_node=def_node, use_node=node.nid)
                    self.chains.append(chain)
                    self._by_use.setdefault((node.nid, symbol), []).append(chain)
                    self._by_def.setdefault((def_node, symbol), []).append(chain)

    def defs_of_use(self, use_node: int, symbol: ast.Symbol) -> list[Chain]:
        return self._by_use.get((use_node, symbol), [])

    def uses_of_def(self, def_node: int, symbol: ast.Symbol) -> list[Chain]:
        return self._by_def.get((def_node, symbol), [])

    def dead_definitions(self) -> list[tuple[int, ast.Symbol]]:
        """Strong definitions with no reached use — candidates for dead-code
        elimination (used by the O3 pipeline's DCE pass as a cross-check)."""
        dead = []
        for node in self.cfg:
            ud = self.reaching.use_def(node.nid)
            if ud is None:
                continue
            for symbol in ud.defs:
                if symbol.kind == "global":
                    continue  # visible after return
                if not self.uses_of_def(node.nid, symbol):
                    dead.append((node.nid, symbol))
        return dead


def build_defuse(func: ast.Function, extractor: UseDefExtractor) -> DefUseChains:
    return DefUseChains(build_cfg(func), extractor)
