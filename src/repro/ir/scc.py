"""Strongly connected components (Tarjan) and condensation.

Used twice in the paper's scheme: on the call graph (recursive functions
form SCCs) and on the nesting graph (section 2.3: each non-singleton SCC
is condensed to a single node keeping its best-gain member).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

Node = Hashable
Graph = Mapping[Node, Iterable[Node]]


def strongly_connected_components(graph: Graph) -> list[list[Node]]:
    """Tarjan's algorithm, iterative (no recursion limit issues).

    Returns SCCs in reverse topological order of the condensation (every
    SCC appears after the SCCs it has edges into appear... precisely:
    Tarjan emits an SCC only after all SCCs reachable from it).
    """
    index_of: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    result: list[list[Node]] = []
    counter = [0]

    for root in graph:
        if root in index_of:
            continue
        # Iterative DFS with explicit work stack of (node, iterator).
        work = [(root, iter(graph.get(root, ())))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in graph:
                    continue
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
    return result


def condense(graph: Graph) -> tuple[dict[Node, int], dict[int, list[Node]], dict[int, set[int]]]:
    """Condense a graph by its SCCs.

    Returns ``(component_of, members, dag)`` where ``component_of`` maps
    each node to its component id, ``members`` maps component ids to their
    node lists, and ``dag`` is the acyclic condensation adjacency.
    """
    sccs = strongly_connected_components(graph)
    component_of: dict[Node, int] = {}
    members: dict[int, list[Node]] = {}
    for cid, component in enumerate(sccs):
        members[cid] = component
        for node in component:
            component_of[node] = cid
    dag: dict[int, set[int]] = {cid: set() for cid in members}
    for node, succs in graph.items():
        for succ in succs:
            if succ not in component_of:
                continue
            a, b = component_of[node], component_of[succ]
            if a != b:
                dag[a].add(b)
    return component_of, members, dag


def topological_order(dag: Mapping[Node, Iterable[Node]]) -> list[Node]:
    """Topological order of an acyclic graph (raises on cycles)."""
    in_degree: dict[Node, int] = {n: 0 for n in dag}
    for node, succs in dag.items():
        for succ in succs:
            if succ in in_degree:
                in_degree[succ] += 1
    ready = [n for n, d in in_degree.items() if d == 0]
    order: list[Node] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for succ in dag.get(node, ()):
            if succ in in_degree:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
    if len(order) != len(in_degree):
        raise ValueError("graph has a cycle")
    return order
