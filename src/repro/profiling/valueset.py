"""Value-set profiling (section 2.1 of the paper).

Single-variable value profiling cannot answer how often a *set* of input
values repeats ("the locality of a set of values cannot be derived from
the locality of the member values"), so the profiler records the distinct
tuples of input values observed at each instrumented segment entry.

For each segment the profiler tracks:

* ``N`` — executions, ``N_ds`` — distinct input sets; the reuse rate is
  ``R = 1 - N_ds / N``;
* a full histogram of input sets (figures 5, 6, 11, 12, 13 of the paper);
* hit ratios of small LRU buffers (1/4/16/64 entries) fed online with the
  same key stream — the hardware-buffer comparison of Table 5;
* inclusive cycles spent inside the segment (between ``__seg_enter`` and
  ``__seg_exit``), giving the *measured* computation granularity C.

Two modes: ``"freq"`` only counts executions (the cheap first profiling
pass used to filter infrequent segments); ``"value"`` records everything,
optionally restricted to an allow-list of surviving segment ids.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from ..runtime.hashtable import LRUBuffer
from ..runtime.machine import Machine

LRU_SIZES = (1, 4, 16, 64)


@dataclass
class SegmentProfile:
    seg_id: int
    executions: int = 0
    value_counts: Counter = field(default_factory=Counter)
    lru: dict[int, LRUBuffer] = field(
        default_factory=lambda: {size: LRUBuffer(size) for size in LRU_SIZES}
    )
    inclusive_cycles: int = 0
    _enter_stack: list[int] = field(default_factory=list)

    @property
    def distinct_inputs(self) -> int:
        return len(self.value_counts)

    @property
    def reuse_rate(self) -> float:
        """R = 1 - N_ds / N (0 when never executed)."""
        if self.executions == 0:
            return 0.0
        return 1.0 - self.distinct_inputs / self.executions

    @property
    def mean_cycles(self) -> float:
        """Measured granularity: inclusive cycles per execution."""
        if self.executions == 0:
            return 0.0
        return self.inclusive_cycles / self.executions

    def lru_hit_ratio(self, size: int) -> float:
        return self.lru[size].hit_ratio

    def histogram(self) -> list[tuple[tuple, int]]:
        """(input set, count) pairs, most frequent first."""
        return self.value_counts.most_common()

    def key_width(self) -> int:
        for key in self.value_counts:
            return len(key)
        return 0


class ValueSetProfiler:
    """The object installed as ``machine.profiler`` during profiling runs."""

    def __init__(
        self,
        machine: Machine,
        mode: str = "value",
        allowed: Optional[set[int]] = None,
        record_lru: bool = True,
    ) -> None:
        if mode not in ("freq", "value"):
            raise ValueError("mode must be 'freq' or 'value'")
        self.machine = machine
        self.mode = mode
        self.allowed = allowed
        self.record_lru = record_lru
        self.profiles: dict[int, SegmentProfile] = {}

    def _profile(self, seg_id: int) -> SegmentProfile:
        profile = self.profiles.get(seg_id)
        if profile is None:
            profile = SegmentProfile(seg_id)
            self.profiles[seg_id] = profile
        return profile

    def _enabled(self, seg_id: int) -> bool:
        return self.allowed is None or seg_id in self.allowed

    # -- hooks called by the runtime intrinsics -----------------------------

    def record(self, seg_id: int, key: tuple) -> None:
        """__profile: one segment execution with its input value set."""
        if not self._enabled(seg_id):
            return
        profile = self._profile(seg_id)
        profile.executions += 1
        if self.mode == "value":
            profile.value_counts[key] += 1
            if self.record_lru:
                for buffer in profile.lru.values():
                    buffer.access(key)

    def count_entry(self, seg_id: int) -> None:
        """__freq: count-only entry event."""
        if self._enabled(seg_id):
            self._profile(seg_id).executions += 1

    def segment_enter(self, seg_id: int) -> None:
        if not self._enabled(seg_id):
            return
        self._profile(seg_id)._enter_stack.append(self.machine.cycles)

    def segment_exit(self, seg_id: int) -> None:
        if not self._enabled(seg_id):
            return
        profile = self._profile(seg_id)
        if profile._enter_stack:
            start = profile._enter_stack.pop()
            # only accumulate for outermost dynamic instances so recursion
            # does not double-count
            if not profile._enter_stack:
                profile.inclusive_cycles += self.machine.cycles - start

    # -- results -----------------------------------------------------------------

    def profile(self, seg_id: int) -> SegmentProfile:
        return self._profile(seg_id)

    def execution_counts(self) -> dict[int, int]:
        return {seg: p.executions for seg, p in self.profiles.items()}
