"""Profiling: execution frequency and value-set profilers."""

from .freq import frequency_report, frequent_segments
from .valueset import LRU_SIZES, SegmentProfile, ValueSetProfiler

__all__ = [
    "frequency_report",
    "frequent_segments",
    "LRU_SIZES",
    "SegmentProfile",
    "ValueSetProfiler",
]
