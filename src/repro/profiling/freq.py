"""Execution-frequency profiling (the gprof/gcov stand-in).

The paper's first step confines value-set profiling "to those frequently
executed routines and loops", using standard frequency tools.  Here the
same information comes from a count-only :class:`ValueSetProfiler` run;
this module adds the selection helper that applies the frequency cut.
"""

from __future__ import annotations

from .valueset import ValueSetProfiler


def frequent_segments(
    profiler: ValueSetProfiler,
    min_executions: int,
) -> set[int]:
    """Segment ids executed at least ``min_executions`` times."""
    return {
        seg_id
        for seg_id, profile in profiler.profiles.items()
        if profile.executions >= min_executions
    }


def frequency_report(profiler: ValueSetProfiler) -> list[tuple[int, int]]:
    """(segment id, execution count), most frequent first."""
    return sorted(
        ((seg, p.executions) for seg, p in profiler.profiles.items()),
        key=lambda item: -item[1],
    )
