"""Built-in (intrinsic) functions available to mini-C programs.

Built-ins fall into three groups:

* math/IO helpers programs may call directly (``__cos``, ``__abs``, ...);
* cast operators the parser desugars ``(int) e`` into (``__cast_int``);
* reuse/profiling intrinsics that only compiler passes emit
  (``__reuse_probe`` and friends) — these are the runtime interface of the
  computation-reuse transformation (Figure 2(b) of the paper).

The registry here is shared between semantic analysis (typing) and the
runtime (implementations live in :mod:`repro.runtime.intrinsics`).
"""

from __future__ import annotations

from dataclasses import dataclass

from .types import FLOAT, INT, VOID, Type


@dataclass(frozen=True)
class BuiltinSig:
    """Signature of a built-in function.

    ``variadic`` built-ins accept any argument count >= ``min_args``;
    argument types are checked loosely (scalars/pointers as needed).
    """

    name: str
    ret: Type
    min_args: int
    variadic: bool = False
    # True for intrinsics that only compiler-inserted code may reference.
    compiler_only: bool = False
    # True for profiling stubs that must not perturb the cost model.
    zero_cost: bool = False


_BUILTINS = [
    # User-callable helpers -------------------------------------------------
    BuiltinSig("__abs", INT, 1),
    BuiltinSig("__fabs", FLOAT, 1),
    BuiltinSig("__cos", FLOAT, 1),
    BuiltinSig("__sin", FLOAT, 1),
    BuiltinSig("__sqrt", FLOAT, 1),
    BuiltinSig("__floor", FLOAT, 1),
    BuiltinSig("__min", INT, 2),
    BuiltinSig("__max", INT, 2),
    BuiltinSig("__print_int", VOID, 1),
    BuiltinSig("__assert", VOID, 1),
    # Input streams: workloads read pre-generated data through these.
    BuiltinSig("__input_int", INT, 0),
    BuiltinSig("__input_float", FLOAT, 0),
    BuiltinSig("__input_avail", INT, 0),
    # Output sink: workloads emit results for checksumming.
    BuiltinSig("__output_int", VOID, 1),
    BuiltinSig("__output_float", VOID, 1),
    # Casts (emitted by the parser for `(int) e` / `(float) e`) ------------
    BuiltinSig("__cast_int", INT, 1),
    BuiltinSig("__cast_float", FLOAT, 1),
    # Computation-reuse runtime interface (compiler-emitted) ----------------
    BuiltinSig("__reuse_probe", INT, 1, variadic=True, compiler_only=True),
    BuiltinSig("__reuse_out_i", INT, 2, compiler_only=True),
    BuiltinSig("__reuse_out_f", FLOAT, 2, compiler_only=True),
    BuiltinSig("__reuse_out_arr", VOID, 3, compiler_only=True),
    BuiltinSig("__reuse_commit", VOID, 1, variadic=True, compiler_only=True),
    BuiltinSig("__reuse_end", VOID, 1, compiler_only=True),
    # Value-set profiling stubs (compiler-emitted, zero cost) ---------------
    BuiltinSig("__profile", VOID, 1, variadic=True, compiler_only=True, zero_cost=True),
    BuiltinSig("__freq", VOID, 1, compiler_only=True, zero_cost=True),
    BuiltinSig("__seg_enter", VOID, 1, compiler_only=True, zero_cost=True),
    BuiltinSig("__seg_exit", VOID, 1, compiler_only=True, zero_cost=True),
]

BUILTINS: dict[str, BuiltinSig] = {b.name: b for b in _BUILTINS}


def is_builtin(name: str) -> bool:
    return name in BUILTINS
