"""Abstract syntax tree node definitions for mini-C.

The AST is deliberately mutable: the paper's scheme is a source-to-source
transformation, and our reuse/specialization passes rewrite the tree in
place (or splice cloned subtrees).  Every node records its source line for
diagnostics and for mapping profiling data back to code.

Symbols are attached by semantic analysis (:mod:`repro.minic.sema`); until
then ``Name.symbol`` is ``None``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .types import Type


class Node:
    """Base class of all AST nodes."""

    line: int

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (used by generic walkers)."""
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, Node):
                        yield item


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and all of its descendants, pre-order."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(list(current.children())))


# ---------------------------------------------------------------------------
# Symbols
# ---------------------------------------------------------------------------

_SYMBOL_COUNTER = [0]


@dataclass(eq=False)
class Symbol:
    """A resolved variable, parameter, or function name.

    Symbols use identity equality: two locals named ``i`` in different
    functions are distinct symbols.
    """

    name: str
    type: Type
    kind: str  # "local" | "param" | "global" | "func"
    slot: int = -1  # frame slot for locals/params, assigned by sema
    address_taken: bool = False
    is_const: bool = False  # declared const, or global never re-assigned
    func_name: str = ""  # owning function for locals/params
    uid: int = field(default_factory=lambda: _SYMBOL_COUNTER.__setitem__(0, _SYMBOL_COUNTER[0] + 1) or _SYMBOL_COUNTER[0])

    def __hash__(self) -> int:
        return self.uid

    def __repr__(self) -> str:
        scope = self.func_name + "::" if self.func_name else ""
        return f"<sym {scope}{self.name}#{self.uid}>"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Expr(Node):
    pass


@dataclass(eq=False)
class IntLit(Expr):
    value: int
    line: int = 0


@dataclass(eq=False)
class FloatLit(Expr):
    value: float
    line: int = 0


@dataclass(eq=False)
class Name(Expr):
    name: str
    line: int = 0
    symbol: Optional[Symbol] = None


@dataclass(eq=False)
class Unary(Expr):
    """Unary operator: one of ``- + ! ~ * &``."""

    op: str
    operand: Expr
    line: int = 0


@dataclass(eq=False)
class IncDec(Expr):
    """``++x``, ``x++``, ``--x``, ``x--``."""

    op: str  # "++" or "--"
    prefix: bool
    target: Expr
    line: int = 0


@dataclass(eq=False)
class Binary(Expr):
    """Binary operator (arithmetic, shifts, comparisons, bitwise)."""

    op: str
    lhs: Expr
    rhs: Expr
    line: int = 0


@dataclass(eq=False)
class Logical(Expr):
    """Short-circuit ``&&`` / ``||`` (kept distinct from Binary because of
    their control-flow semantics)."""

    op: str  # "&&" or "||"
    lhs: Expr
    rhs: Expr
    line: int = 0


@dataclass(eq=False)
class Assign(Expr):
    """Assignment, possibly compound (``=``, ``+=``, ``<<=``, ...)."""

    op: str
    target: Expr
    value: Expr
    line: int = 0


@dataclass(eq=False)
class Ternary(Expr):
    cond: Expr
    then: Expr
    els: Expr
    line: int = 0


@dataclass(eq=False)
class Call(Expr):
    """Function call.  ``func`` is usually a Name; calls through function
    pointers use an arbitrary expression."""

    func: Expr
    args: list[Expr]
    line: int = 0


@dataclass(eq=False)
class Index(Expr):
    """Array subscript ``base[index]`` (also used for pointer indexing)."""

    base: Expr
    index: Expr
    line: int = 0


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Stmt(Node):
    pass


@dataclass(eq=False)
class VarDecl(Node):
    """A single declarator within a declaration statement."""

    name: str
    type: Type
    init: Optional[Expr]
    line: int = 0
    symbol: Optional[Symbol] = None
    # Array initializers are lists of (possibly nested) constant expressions.
    array_init: Optional[list] = None


@dataclass(eq=False)
class DeclStmt(Stmt):
    decls: list[VarDecl]
    line: int = 0


@dataclass(eq=False)
class ExprStmt(Stmt):
    expr: Expr
    line: int = 0


@dataclass(eq=False)
class Block(Stmt):
    stmts: list[Stmt]
    line: int = 0


@dataclass(eq=False)
class If(Stmt):
    cond: Expr
    then: Block
    els: Optional[Block]
    line: int = 0


@dataclass(eq=False)
class While(Stmt):
    cond: Expr
    body: Block
    line: int = 0


@dataclass(eq=False)
class DoWhile(Stmt):
    body: Block
    cond: Expr
    line: int = 0


@dataclass(eq=False)
class For(Stmt):
    init: Optional[Stmt]  # DeclStmt or ExprStmt
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Block
    line: int = 0


@dataclass(eq=False)
class Return(Stmt):
    value: Optional[Expr]
    line: int = 0


@dataclass(eq=False)
class Break(Stmt):
    line: int = 0


@dataclass(eq=False)
class Continue(Stmt):
    line: int = 0


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Param(Node):
    name: str
    type: Type
    line: int = 0
    symbol: Optional[Symbol] = None


@dataclass(eq=False)
class Function(Node):
    name: str
    ret_type: Type
    params: list[Param]
    body: Block
    is_static: bool = False
    line: int = 0
    symbol: Optional[Symbol] = None
    # Number of frame slots (params + locals), assigned by sema.
    frame_size: int = 0


@dataclass(eq=False)
class GlobalVar(Node):
    decl: VarDecl
    is_static: bool = False
    is_const: bool = False
    line: int = 0


@dataclass(eq=False)
class Program(Node):
    """A whole translation unit: globals and functions, in source order."""

    globals: list[GlobalVar]
    functions: list[Function]
    line: int = 0

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)

    def global_var(self, name: str) -> GlobalVar:
        for g in self.globals:
            if g.decl.name == name:
                return g
        raise KeyError(name)
