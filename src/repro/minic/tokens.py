"""Token definitions for the mini-C language.

The mini-C language is the C subset that the paper's GCC modules operate
on: scalar ``int``/``float`` variables, pointers, fixed-size arrays,
functions, and structured control flow.  Tokens carry source positions so
diagnostics and profiling stubs can reference the original code.
"""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds -----------------------------------------------------------

IDENT = "IDENT"
INT_LIT = "INT_LIT"
FLOAT_LIT = "FLOAT_LIT"
KEYWORD = "KEYWORD"
PUNCT = "PUNCT"
EOF = "EOF"

KEYWORDS = frozenset(
    {
        "int",
        "float",
        "void",
        "if",
        "else",
        "while",
        "for",
        "do",
        "return",
        "break",
        "continue",
        "static",
        "const",
        "sizeof",
    }
)

# Multi-character punctuators, longest first so the lexer can use
# maximal-munch by probing in order.
PUNCTUATORS = (
    "<<=",
    ">>=",
    "...",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "->",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "<",
    ">",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
    ";",
    ",",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ".",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: one of IDENT, INT_LIT, FLOAT_LIT, KEYWORD, PUNCT, EOF.
        text: the exact source spelling (keywords/punctuators included).
        value: the decoded value for literals (int or float), else None.
        line: 1-based source line.
        col: 1-based source column.
    """

    kind: str
    text: str
    value: object
    line: int
    col: int

    def is_punct(self, text: str) -> bool:
        return self.kind == PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == KEYWORD and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"
