"""Pretty-printer (unparser) for mini-C ASTs.

The reuse pass is a source-to-source transformation, exactly like the
paper's GCC implementation; this module renders transformed programs back
to mini-C text.  The output re-parses to an equivalent AST (round-trip
tested), which is how we validate structural transformations.
"""

from __future__ import annotations

from . import astnodes as ast
from .types import ArrayType, PointerType, Type

_INDENT = "    "

# Mirror of the parser's precedence table, used to decide where output
# parentheses are required.
_PREC = {
    ",": 0,
    "=": 1,
    "?:": 2,
    "||": 3,
    "&&": 4,
    "|": 5,
    "^": 6,
    "&": 7,
    "==": 8,
    "!=": 8,
    "<": 9,
    "<=": 9,
    ">": 9,
    ">=": 9,
    "<<": 10,
    ">>": 10,
    "+": 11,
    "-": 11,
    "*": 12,
    "/": 12,
    "%": 12,
}
_UNARY_PREC = 13
_POSTFIX_PREC = 14


def type_prefix_suffix(t: Type) -> tuple[str, str]:
    """Split a type into the (prefix, suffix) strings around a declarator
    name: ``int x[4]`` has prefix ``int`` and suffix ``[4]``."""
    suffix = ""
    while isinstance(t, ArrayType):
        suffix += f"[{t.length}]"
        t = t.elem
    prefix = str(t)
    return prefix, suffix


def format_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    text, prec = _expr_with_prec(expr)
    if prec < parent_prec:
        return f"({text})"
    return text


def _expr_with_prec(expr: ast.Expr) -> tuple[str, int]:
    if isinstance(expr, ast.IntLit):
        return str(expr.value), _POSTFIX_PREC + 1
    if isinstance(expr, ast.FloatLit):
        text = repr(expr.value)
        if "." not in text and "e" not in text and "inf" not in text:
            text += ".0"
        return text, _POSTFIX_PREC + 1
    if isinstance(expr, ast.Name):
        return expr.name, _POSTFIX_PREC + 1
    if isinstance(expr, ast.Unary):
        inner = format_expr(expr.operand, _UNARY_PREC)
        # `- -x` must not lex as `--x` (and likewise `& &x`).
        sep = " " if inner.startswith(expr.op[0]) else ""
        return f"{expr.op}{sep}{inner}", _UNARY_PREC
    if isinstance(expr, ast.IncDec):
        inner = format_expr(expr.target, _POSTFIX_PREC)
        if expr.prefix:
            return f"{expr.op}{inner}", _UNARY_PREC
        return f"{inner}{expr.op}", _POSTFIX_PREC
    if isinstance(expr, (ast.Binary, ast.Logical)):
        prec = _PREC[expr.op]
        lhs = format_expr(expr.lhs, prec)
        rhs = format_expr(expr.rhs, prec + 1)
        if expr.op == ",":
            return f"{lhs}, {rhs}", prec
        return f"{lhs} {expr.op} {rhs}", prec
    if isinstance(expr, ast.Assign):
        prec = _PREC["="]
        target = format_expr(expr.target, prec + 1)
        value = format_expr(expr.value, prec)
        return f"{target} {expr.op} {value}", prec
    if isinstance(expr, ast.Ternary):
        prec = _PREC["?:"]
        cond = format_expr(expr.cond, prec + 1)
        then = format_expr(expr.then, 0)
        els = format_expr(expr.els, prec)
        return f"{cond} ? {then} : {els}", prec
    if isinstance(expr, ast.Call):
        func = format_expr(expr.func, _POSTFIX_PREC)
        args = ", ".join(format_expr(a, _PREC["="]) for a in expr.args)
        return f"{func}({args})", _POSTFIX_PREC
    if isinstance(expr, ast.Index):
        base = format_expr(expr.base, _POSTFIX_PREC)
        index = format_expr(expr.index, 0)
        return f"{base}[{index}]", _POSTFIX_PREC
    raise TypeError(f"unknown expression node: {type(expr).__name__}")


def _format_init(item) -> str:
    if isinstance(item, list):
        return "{" + ", ".join(_format_init(x) for x in item) + "}"
    return format_expr(item)


def _format_var_decl(decl: ast.VarDecl) -> str:
    prefix, suffix = type_prefix_suffix(decl.type)
    text = f"{prefix} {decl.name}{suffix}"
    if decl.array_init is not None:
        text += " = " + _format_init(decl.array_init)
    elif decl.init is not None:
        text += " = " + format_expr(decl.init, _PREC["="])
    return text


def _format_decl_stmt_inline(stmt: ast.DeclStmt) -> str:
    return "; ".join(_format_var_decl(d) for d in stmt.decls) + ";"


def format_stmt(stmt: ast.Stmt, indent: int = 0) -> str:
    pad = _INDENT * indent
    if isinstance(stmt, ast.DeclStmt):
        return "\n".join(pad + _format_var_decl(d) + ";" for d in stmt.decls)
    if isinstance(stmt, ast.ExprStmt):
        return pad + format_expr(stmt.expr) + ";"
    if isinstance(stmt, ast.Block):
        if not stmt.stmts:
            return pad + "{\n" + pad + "}"
        body = "\n".join(format_stmt(s, indent + 1) for s in stmt.stmts)
        return pad + "{\n" + body + "\n" + pad + "}"
    if isinstance(stmt, ast.If):
        text = pad + f"if ({format_expr(stmt.cond)})\n" + format_stmt(stmt.then, indent)
        if stmt.els is not None:
            text += "\n" + pad + "else\n" + format_stmt(stmt.els, indent)
        return text
    if isinstance(stmt, ast.While):
        return pad + f"while ({format_expr(stmt.cond)})\n" + format_stmt(stmt.body, indent)
    if isinstance(stmt, ast.DoWhile):
        return (
            pad
            + "do\n"
            + format_stmt(stmt.body, indent)
            + "\n"
            + pad
            + f"while ({format_expr(stmt.cond)});"
        )
    if isinstance(stmt, ast.For):
        if stmt.init is None:
            init = ";"
        elif isinstance(stmt.init, ast.DeclStmt):
            init = _format_decl_stmt_inline(stmt.init)
        else:
            init = format_expr(stmt.init.expr) + ";"
        cond = " " + format_expr(stmt.cond) if stmt.cond is not None else ""
        step = " " + format_expr(stmt.step) if stmt.step is not None else ""
        return pad + f"for ({init}{cond};{step})\n" + format_stmt(stmt.body, indent)
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return pad + "return;"
        return pad + f"return {format_expr(stmt.value)};"
    if isinstance(stmt, ast.Break):
        return pad + "break;"
    if isinstance(stmt, ast.Continue):
        return pad + "continue;"
    raise TypeError(f"unknown statement node: {type(stmt).__name__}")


def _format_param(p: ast.Param) -> str:
    from .types import FuncType, PointerType

    t = p.type
    if isinstance(t, PointerType) and isinstance(t.elem, FuncType):
        args = ", ".join(str(a) for a in t.elem.params) or "void"
        return f"{t.elem.ret} {p.name}({args})"
    return f"{t} {p.name}"


def format_function(fn: ast.Function) -> str:
    params = ", ".join(_format_param(p) for p in fn.params) or "void"
    static = "static " if fn.is_static else ""
    header = f"{static}{fn.ret_type} {fn.name}({params})"
    return header + "\n" + format_stmt(fn.body, 0)


def format_program(program: ast.Program) -> str:
    parts: list[str] = []
    for g in program.globals:
        qualifiers = ("static " if g.is_static else "") + ("const " if g.is_const else "")
        parts.append(qualifiers + _format_var_decl(g.decl) + ";")
    if parts:
        parts.append("")
    for fn in program.functions:
        parts.append(format_function(fn))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"
