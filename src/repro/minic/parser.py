"""Recursive-descent parser for mini-C.

Produces an unresolved AST (:mod:`repro.minic.astnodes`); name resolution
and slot assignment happen in :mod:`repro.minic.sema`.  Expressions are
parsed with precedence climbing mirroring C's operator precedence.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ParseError
from . import astnodes as ast
from .lexer import tokenize
from .tokens import EOF, FLOAT_LIT, IDENT, INT_LIT, KEYWORD, Token
from .types import FLOAT, INT, VOID, ArrayType, PointerType, Type

# Binary operator precedence (higher binds tighter).  && and || are
# handled separately because they produce Logical nodes.
_BIN_PREC = {
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}
_LOGICAL_PREC = {"||": 1, "&&": 2}

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "|=", "^="})


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------

    @property
    def _tok(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != EOF:
            self._pos += 1
        return tok

    def _expect_punct(self, text: str) -> Token:
        tok = self._tok
        if not tok.is_punct(text):
            raise ParseError(f"expected {text!r}, found {tok.text!r}", tok.line, tok.col)
        return self._advance()

    def _expect_ident(self) -> Token:
        tok = self._tok
        if tok.kind != IDENT:
            raise ParseError(f"expected identifier, found {tok.text!r}", tok.line, tok.col)
        return self._advance()

    def _accept_punct(self, text: str) -> bool:
        if self._tok.is_punct(text):
            self._advance()
            return True
        return False

    def _accept_keyword(self, text: str) -> bool:
        if self._tok.is_keyword(text):
            self._advance()
            return True
        return False

    # -- program ----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program(globals=[], functions=[], line=1)
        while self._tok.kind != EOF:
            self._parse_top_level(program)
        return program

    def _parse_top_level(self, program: ast.Program) -> None:
        is_static = False
        is_const = False
        while True:
            if self._accept_keyword("static"):
                is_static = True
            elif self._accept_keyword("const"):
                is_const = True
            else:
                break
        base = self._parse_base_type()
        base = self._parse_stars(base)
        name_tok = self._expect_ident()
        if self._tok.is_punct("("):
            fn = self._parse_function_rest(base, name_tok, is_static)
            if fn is not None:
                program.functions.append(fn)
            return
        # Global variable declaration(s).
        while True:
            var_type = self._parse_array_suffix(base)
            init, array_init = self._parse_initializer_opt()
            decl = ast.VarDecl(
                name=name_tok.text,
                type=var_type,
                init=init,
                array_init=array_init,
                line=name_tok.line,
            )
            program.globals.append(
                ast.GlobalVar(decl=decl, is_static=is_static, is_const=is_const, line=name_tok.line)
            )
            if not self._accept_punct(","):
                break
            name_tok = self._expect_ident()
        self._expect_punct(";")

    def _parse_function_rest(
        self, ret_type: Type, name_tok: Token, is_static: bool
    ) -> Optional[ast.Function]:
        self._expect_punct("(")
        params: list[ast.Param] = []
        if not self._tok.is_punct(")"):
            if self._tok.is_keyword("void") and self._peek().is_punct(")"):
                self._advance()
            else:
                while True:
                    params.append(self._parse_param())
                    if not self._accept_punct(","):
                        break
        self._expect_punct(")")
        if self._accept_punct(";"):
            return None  # prototype; definitions are collected in a later pass
        body = self._parse_block()
        return ast.Function(
            name=name_tok.text,
            ret_type=ret_type,
            params=params,
            body=body,
            is_static=is_static,
            line=name_tok.line,
        )

    def _parse_param(self) -> ast.Param:
        while self._accept_keyword("const") or self._accept_keyword("static"):
            pass
        base = self._parse_base_type()
        base = self._parse_stars(base)
        name_tok = self._expect_ident()
        ptype: Type = base
        # Function-pointer parameters use the K&R-ish form `int f(int, int)`.
        if self._tok.is_punct("("):
            self._advance()
            ptypes: list[Type] = []
            if not self._tok.is_punct(")"):
                if self._tok.is_keyword("void") and self._peek().is_punct(")"):
                    self._advance()
                else:
                    while True:
                        pt = self._parse_stars(self._parse_base_type())
                        if self._tok.kind == IDENT:
                            self._advance()  # optional parameter name
                        ptypes.append(pt)
                        if not self._accept_punct(","):
                            break
            self._expect_punct(")")
            from .types import FuncType

            return ast.Param(
                name=name_tok.text,
                type=PointerType(FuncType(base, tuple(ptypes))),
                line=name_tok.line,
            )
        # Array parameters decay to pointers; `int a[][8]` keeps the inner
        # dimensions so indexing arithmetic still works.
        dims: list[Optional[int]] = []
        while self._accept_punct("["):
            if self._tok.is_punct("]"):
                dims.append(None)
            else:
                dims.append(self._parse_const_int())
            self._expect_punct("]")
        if dims:
            inner: Type = base
            for dim in reversed(dims[1:]):
                if dim is None:
                    raise ParseError(
                        "only the first array dimension of a parameter may be empty",
                        name_tok.line,
                        name_tok.col,
                    )
                inner = ArrayType(inner, dim)
            ptype = PointerType(inner)
        return ast.Param(name=name_tok.text, type=ptype, line=name_tok.line)

    # -- types --------------------------------------------------------------

    def _parse_base_type(self) -> Type:
        tok = self._tok
        if tok.is_keyword("int"):
            self._advance()
            return INT
        if tok.is_keyword("float"):
            self._advance()
            return FLOAT
        if tok.is_keyword("void"):
            self._advance()
            return VOID
        raise ParseError(f"expected type, found {tok.text!r}", tok.line, tok.col)

    def _parse_stars(self, base: Type) -> Type:
        while self._accept_punct("*"):
            base = PointerType(base)
        return base

    def _parse_array_suffix(self, base: Type) -> Type:
        dims: list[int] = []
        while self._accept_punct("["):
            dims.append(self._parse_const_int())
            self._expect_punct("]")
        result = base
        for dim in reversed(dims):
            result = ArrayType(result, dim)
        return result

    def _parse_const_int(self) -> int:
        expr = self.parse_expression()
        value = _const_eval(expr)
        if not isinstance(value, int):
            tok = self._tok
            raise ParseError("array size must be a constant integer", tok.line, tok.col)
        return value

    def _parse_initializer_opt(self):
        """Returns (scalar_init, array_init)."""
        if not self._accept_punct("="):
            return None, None
        if self._tok.is_punct("{"):
            return None, self._parse_init_list()
        return self.parse_assignment(), None

    def _parse_init_list(self) -> list:
        self._expect_punct("{")
        items: list = []
        if not self._tok.is_punct("}"):
            while True:
                if self._tok.is_punct("{"):
                    items.append(self._parse_init_list())
                else:
                    items.append(self.parse_assignment())
                if not self._accept_punct(","):
                    break
        self._expect_punct("}")
        return items

    # -- statements -----------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        open_tok = self._expect_punct("{")
        stmts: list[ast.Stmt] = []
        while not self._tok.is_punct("}"):
            if self._tok.kind == EOF:
                raise ParseError("unterminated block", open_tok.line, open_tok.col)
            stmts.append(self._parse_statement())
        self._expect_punct("}")
        return ast.Block(stmts=stmts, line=open_tok.line)

    def _starts_declaration(self) -> bool:
        tok = self._tok
        return tok.kind == KEYWORD and tok.text in ("int", "float", "static", "const")

    def _parse_statement(self) -> ast.Stmt:
        tok = self._tok
        if tok.is_punct("{"):
            return self._parse_block()
        if tok.is_punct(";"):
            self._advance()
            return ast.Block(stmts=[], line=tok.line)
        if self._starts_declaration():
            return self._parse_decl_stmt()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("do"):
            return self._parse_do_while()
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("return"):
            self._advance()
            value = None if self._tok.is_punct(";") else self.parse_expression()
            self._expect_punct(";")
            return ast.Return(value=value, line=tok.line)
        if tok.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return ast.Break(line=tok.line)
        if tok.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return ast.Continue(line=tok.line)
        expr = self.parse_expression()
        self._expect_punct(";")
        return ast.ExprStmt(expr=expr, line=tok.line)

    def _parse_decl_stmt(self) -> ast.DeclStmt:
        first = self._tok
        while self._accept_keyword("static") or self._accept_keyword("const"):
            pass
        base = self._parse_base_type()
        decls: list[ast.VarDecl] = []
        while True:
            dtype = self._parse_stars(base)
            name_tok = self._expect_ident()
            dtype = self._parse_array_suffix(dtype)
            init, array_init = self._parse_initializer_opt()
            decls.append(
                ast.VarDecl(
                    name=name_tok.text,
                    type=dtype,
                    init=init,
                    array_init=array_init,
                    line=name_tok.line,
                )
            )
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        return ast.DeclStmt(decls=decls, line=first.line)

    def _parse_if(self) -> ast.If:
        tok = self._advance()  # 'if'
        self._expect_punct("(")
        cond = self.parse_expression()
        self._expect_punct(")")
        then = self._as_block(self._parse_statement())
        els = None
        if self._accept_keyword("else"):
            els = self._as_block(self._parse_statement())
        return ast.If(cond=cond, then=then, els=els, line=tok.line)

    def _parse_while(self) -> ast.While:
        tok = self._advance()
        self._expect_punct("(")
        cond = self.parse_expression()
        self._expect_punct(")")
        body = self._as_block(self._parse_statement())
        return ast.While(cond=cond, body=body, line=tok.line)

    def _parse_do_while(self) -> ast.DoWhile:
        tok = self._advance()
        body = self._as_block(self._parse_statement())
        if not self._accept_keyword("while"):
            raise ParseError("expected 'while' after do-body", self._tok.line, self._tok.col)
        self._expect_punct("(")
        cond = self.parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.DoWhile(body=body, cond=cond, line=tok.line)

    def _parse_for(self) -> ast.For:
        tok = self._advance()
        self._expect_punct("(")
        init: Optional[ast.Stmt] = None
        if not self._tok.is_punct(";"):
            if self._starts_declaration():
                init = self._parse_decl_stmt()
            else:
                expr = self.parse_expression()
                self._expect_punct(";")
                init = ast.ExprStmt(expr=expr, line=tok.line)
        else:
            self._advance()
        cond = None if self._tok.is_punct(";") else self.parse_expression()
        self._expect_punct(";")
        step = None if self._tok.is_punct(")") else self.parse_expression()
        self._expect_punct(")")
        body = self._as_block(self._parse_statement())
        return ast.For(init=init, cond=cond, step=step, body=body, line=tok.line)

    @staticmethod
    def _as_block(stmt: ast.Stmt) -> ast.Block:
        if isinstance(stmt, ast.Block):
            return stmt
        return ast.Block(stmts=[stmt], line=stmt.line)

    # -- expressions -------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        expr = self.parse_assignment()
        while self._tok.is_punct(","):
            # The comma operator: evaluate lhs for effect, yield rhs.  We
            # model it as a Binary with op "," (rare; used in for-steps).
            tok = self._advance()
            rhs = self.parse_assignment()
            expr = ast.Binary(op=",", lhs=expr, rhs=rhs, line=tok.line)
        return expr

    def parse_assignment(self) -> ast.Expr:
        lhs = self._parse_ternary()
        tok = self._tok
        if tok.kind == "PUNCT" and tok.text in _ASSIGN_OPS:
            self._advance()
            rhs = self.parse_assignment()
            if not _is_lvalue(lhs):
                raise ParseError("invalid assignment target", tok.line, tok.col)
            return ast.Assign(op=tok.text, target=lhs, value=rhs, line=tok.line)
        return lhs

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._tok.is_punct("?"):
            tok = self._advance()
            then = self.parse_assignment()
            self._expect_punct(":")
            els = self._parse_ternary()
            return ast.Ternary(cond=cond, then=then, els=els, line=tok.line)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self._parse_unary()
        while True:
            tok = self._tok
            if tok.kind != "PUNCT":
                return lhs
            if tok.text in _LOGICAL_PREC and _LOGICAL_PREC[tok.text] >= min_prec:
                prec = _LOGICAL_PREC[tok.text]
                self._advance()
                rhs = self._parse_binary(prec + 1)
                lhs = ast.Logical(op=tok.text, lhs=lhs, rhs=rhs, line=tok.line)
                continue
            if tok.text in _BIN_PREC and _BIN_PREC[tok.text] >= min_prec:
                prec = _BIN_PREC[tok.text]
                self._advance()
                rhs = self._parse_binary(prec + 1)
                lhs = ast.Binary(op=tok.text, lhs=lhs, rhs=rhs, line=tok.line)
                continue
            return lhs

    def _parse_unary(self) -> ast.Expr:
        tok = self._tok
        if tok.kind == "PUNCT":
            if tok.text in ("-", "+", "!", "~", "*", "&"):
                self._advance()
                operand = self._parse_unary()
                if tok.text == "+":
                    return operand
                return ast.Unary(op=tok.text, operand=operand, line=tok.line)
            if tok.text in ("++", "--"):
                self._advance()
                target = self._parse_unary()
                return ast.IncDec(op=tok.text, prefix=True, target=target, line=tok.line)
        if tok.is_keyword("sizeof"):
            self._advance()
            self._expect_punct("(")
            base = self._parse_base_type()
            base = self._parse_stars(base)
            base = self._parse_array_suffix(base)
            self._expect_punct(")")
            return ast.IntLit(value=base.size_words() * 4, line=tok.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._tok
            if tok.is_punct("("):
                self._advance()
                args: list[ast.Expr] = []
                if not self._tok.is_punct(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                expr = ast.Call(func=expr, args=args, line=tok.line)
            elif tok.is_punct("["):
                self._advance()
                index = self.parse_expression()
                self._expect_punct("]")
                expr = ast.Index(base=expr, index=index, line=tok.line)
            elif tok.is_punct("++") or tok.is_punct("--"):
                self._advance()
                expr = ast.IncDec(op=tok.text, prefix=False, target=expr, line=tok.line)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._tok
        if tok.kind == INT_LIT:
            self._advance()
            return ast.IntLit(value=tok.value, line=tok.line)
        if tok.kind == FLOAT_LIT:
            self._advance()
            return ast.FloatLit(value=tok.value, line=tok.line)
        if tok.kind == IDENT:
            self._advance()
            return ast.Name(name=tok.text, line=tok.line)
        if tok.is_punct("("):
            self._advance()
            # Support casts `(int) e` and `(float) e`.
            if self._tok.kind == KEYWORD and self._tok.text in ("int", "float"):
                base = self._parse_base_type()
                base = self._parse_stars(base)
                self._expect_punct(")")
                operand = self._parse_unary()
                return ast.Call(
                    func=ast.Name(name=f"__cast_{base}", line=tok.line),
                    args=[operand],
                    line=tok.line,
                )
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.line, tok.col)


def _is_lvalue(expr: ast.Expr) -> bool:
    return isinstance(expr, (ast.Name, ast.Index)) or (
        isinstance(expr, ast.Unary) and expr.op == "*"
    )


def _const_eval(expr: ast.Expr):
    """Evaluate a literal-only constant expression (used for array sizes)."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.FloatLit):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _const_eval(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, ast.Binary):
        lhs = _const_eval(expr.lhs)
        rhs = _const_eval(expr.rhs)
        if lhs is None or rhs is None:
            return None
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a // b if isinstance(a, int) and isinstance(b, int) else a / b,
            "<<": lambda a, b: a << b,
            ">>": lambda a, b: a >> b,
        }
        fn = ops.get(expr.op)
        return None if fn is None else fn(lhs, rhs)
    return None


def parse_program(source: str) -> ast.Program:
    """Parse mini-C source text into an unresolved Program AST."""
    return Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> ast.Expr:
    """Parse a single mini-C expression (convenience for tests)."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expression()
    tok = parser._tok
    if tok.kind != EOF:
        raise ParseError(f"trailing input after expression: {tok.text!r}", tok.line, tok.col)
    return expr
