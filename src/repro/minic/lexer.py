"""Hand-written lexer for mini-C.

The lexer performs maximal-munch tokenization, handles ``//`` and
``/* ... */`` comments, decimal/hex integer literals, floating literals,
and character literals (which lex as integer literals, as in C).
"""

from __future__ import annotations

from ..errors import LexError
from .tokens import (
    EOF,
    FLOAT_LIT,
    IDENT,
    INT_LIT,
    KEYWORD,
    KEYWORDS,
    PUNCT,
    PUNCTUATORS,
    Token,
)

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")

_ESCAPES = {
    "n": 10,
    "t": 9,
    "r": 13,
    "0": 0,
    "\\": 92,
    "'": 39,
    '"': 34,
}


def tokenize(source: str) -> list[Token]:
    """Convert mini-C source text into a list of tokens ending with EOF."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(message: str) -> LexError:
        return LexError(message, line, col)

    while i < n:
        ch = source[i]
        # Whitespace ---------------------------------------------------
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r\f\v":
            i += 1
            col += 1
            continue
        # Comments -----------------------------------------------------
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "*":
            start_line, start_col = line, col
            i += 2
            col += 2
            while True:
                if i + 1 >= n:
                    raise LexError("unterminated block comment", start_line, start_col)
                if source[i] == "*" and source[i + 1] == "/":
                    i += 2
                    col += 2
                    break
                if source[i] == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
                i += 1
            continue
        # Identifiers / keywords ----------------------------------------
        if ch in _IDENT_START:
            start = i
            start_col = col
            while i < n and source[i] in _IDENT_CONT:
                i += 1
                col += 1
            text = source[start:i]
            kind = KEYWORD if text in KEYWORDS else IDENT
            tokens.append(Token(kind, text, None, line, start_col))
            continue
        # Numbers --------------------------------------------------------
        if ch in _DIGITS or (ch == "." and i + 1 < n and source[i + 1] in _DIGITS):
            start = i
            start_col = col
            is_float = False
            if ch == "0" and i + 1 < n and source[i + 1] in "xX":
                i += 2
                col += 2
                while i < n and source[i] in _HEX_DIGITS:
                    i += 1
                    col += 1
                text = source[start:i]
                tokens.append(Token(INT_LIT, text, int(text, 16), line, start_col))
                continue
            while i < n and source[i] in _DIGITS:
                i += 1
                col += 1
            if i < n and source[i] == ".":
                is_float = True
                i += 1
                col += 1
                while i < n and source[i] in _DIGITS:
                    i += 1
                    col += 1
            if i < n and source[i] in "eE":
                is_float = True
                i += 1
                col += 1
                if i < n and source[i] in "+-":
                    i += 1
                    col += 1
                if i >= n or source[i] not in _DIGITS:
                    raise error("malformed exponent in float literal")
                while i < n and source[i] in _DIGITS:
                    i += 1
                    col += 1
            if i < n and source[i] in "fF" and is_float:
                i += 1
                col += 1
                text = source[start : i - 1]
            else:
                text = source[start:i]
            if is_float:
                tokens.append(Token(FLOAT_LIT, text, float(text), line, start_col))
            else:
                tokens.append(Token(INT_LIT, text, int(text), line, start_col))
            continue
        # Character literal (lexes to an int, as in C) --------------------
        if ch == "'":
            start_col = col
            i += 1
            col += 1
            if i >= n:
                raise error("unterminated character literal")
            if source[i] == "\\":
                i += 1
                col += 1
                if i >= n or source[i] not in _ESCAPES:
                    raise error("unknown escape in character literal")
                value = _ESCAPES[source[i]]
            else:
                value = ord(source[i])
            i += 1
            col += 1
            if i >= n or source[i] != "'":
                raise error("unterminated character literal")
            i += 1
            col += 1
            tokens.append(Token(INT_LIT, f"'{chr(value)}'", value, line, start_col))
            continue
        # Punctuators ------------------------------------------------------
        matched = None
        for punct in PUNCTUATORS:
            if source.startswith(punct, i):
                matched = punct
                break
        if matched is not None:
            tokens.append(Token(PUNCT, matched, None, line, col))
            i += len(matched)
            col += len(matched)
            continue
        raise error(f"unexpected character {ch!r}")

    tokens.append(Token(EOF, "", None, line, col))
    return tokens
