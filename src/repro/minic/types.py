"""Type representations for mini-C.

Types are interned where convenient (INT/FLOAT/VOID singletons) and
compared structurally.  Sizes are in 32-bit *words*, the unit the paper's
hashing-overhead analysis reasons in (input/output size drives the cost
of probing and copying the reuse table).
"""

from __future__ import annotations

from dataclasses import dataclass


class Type:
    """Base class for mini-C types."""

    def size_words(self) -> int:
        """Size of a value of this type in 32-bit words."""
        raise NotImplementedError

    @property
    def is_scalar(self) -> bool:
        return False

    @property
    def is_pointer(self) -> bool:
        return False

    @property
    def is_array(self) -> bool:
        return False


@dataclass(frozen=True)
class ScalarType(Type):
    """``int`` or ``float``; both occupy one word in our model."""

    name: str  # "int" or "float"

    def size_words(self) -> int:
        return 1

    @property
    def is_scalar(self) -> bool:
        return True

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class VoidType(Type):
    name: str = "void"

    def size_words(self) -> int:
        return 0

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class PointerType(Type):
    """Pointer to an element type (arrays decay to these at call sites)."""

    elem: Type

    def size_words(self) -> int:
        return 1

    @property
    def is_pointer(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.elem}*"


@dataclass(frozen=True)
class ArrayType(Type):
    """Fixed-size one-dimensional array.

    Multi-dimensional arrays are arrays of arrays: ``int a[8][8]`` has
    type ``ArrayType(ArrayType(INT, 8), 8)``.
    """

    elem: Type
    length: int

    def size_words(self) -> int:
        return self.elem.size_words() * self.length

    @property
    def is_array(self) -> bool:
        return True

    @property
    def base_elem(self) -> Type:
        """The ultimate scalar element type of a (possibly nested) array."""
        t: Type = self
        while isinstance(t, ArrayType):
            t = t.elem
        return t

    def __str__(self) -> str:
        return f"{self.elem}[{self.length}]"


@dataclass(frozen=True)
class FuncType(Type):
    ret: Type
    params: tuple[Type, ...]

    def size_words(self) -> int:
        return 1  # a function pointer

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        return f"{self.ret}({params})"


INT = ScalarType("int")
FLOAT = ScalarType("float")
VOID = VoidType()


def decay(t: Type) -> Type:
    """Array-to-pointer decay, as applied to call arguments and most
    expression contexts in C."""
    if isinstance(t, ArrayType):
        return PointerType(t.elem)
    return t


def is_integer(t: Type) -> bool:
    return t == INT


def is_float(t: Type) -> bool:
    return t == FLOAT


def is_arith(t: Type) -> bool:
    return isinstance(t, ScalarType)


def common_arith_type(a: Type, b: Type) -> Type:
    """Usual arithmetic conversions restricted to int/float."""
    if FLOAT in (a, b):
        return FLOAT
    return INT
