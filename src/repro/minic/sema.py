"""Semantic analysis for mini-C.

Responsibilities:

* resolve every :class:`~repro.minic.astnodes.Name` to a
  :class:`~repro.minic.astnodes.Symbol` (locals shadow globals; block
  scoping with shadowing is supported);
* assign frame slots to params/locals and global slots to globals;
* mark address-taken scalars (the runtime boxes those);
* detect syntactically-constant globals (never written and never passed
  to a call) — the seed set for the paper's "invariant at segment entry"
  classification, later refined by pointer/mod-ref analysis;
* light type checking via :class:`Typer` (indexing non-arrays, calling
  non-functions, arity errors for known functions and builtins).

``analyze`` mutates the AST in place and returns it, so passes can chain:
``analyze(parse_program(src))``.
"""

from __future__ import annotations

from typing import Optional

from ..errors import SemanticError
from . import astnodes as ast
from .builtins import BUILTINS
from .types import (
    FLOAT,
    INT,
    VOID,
    FuncType,
    PointerType,
    Type,
    common_arith_type,
    decay,
)


class Scope:
    """A lexical scope mapping names to symbols."""

    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self.parent = parent
        self.symbols: dict[str, ast.Symbol] = {}

    def define(self, symbol: ast.Symbol) -> None:
        if symbol.name in self.symbols:
            raise SemanticError(f"duplicate declaration of {symbol.name!r}")
        self.symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Optional[ast.Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class SemanticAnalyzer:
    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.global_scope = Scope()
        self._next_slot = 0
        self._current_fn: Optional[ast.Function] = None

    # -- entry point -----------------------------------------------------

    def run(self) -> ast.Program:
        self._declare_globals()
        self._declare_functions()
        for fn in self.program.functions:
            self._resolve_function(fn)
        self._mark_constant_globals()
        return self.program

    # -- pass 1: global declarations --------------------------------------

    def _declare_globals(self) -> None:
        for index, g in enumerate(self.program.globals):
            symbol = ast.Symbol(
                name=g.decl.name,
                type=g.decl.type,
                kind="global",
                slot=index,
                is_const=g.is_const,
            )
            g.decl.symbol = symbol
            self.global_scope.define(symbol)

    def _declare_functions(self) -> None:
        for fn in self.program.functions:
            ftype = FuncType(fn.ret_type, tuple(decay(p.type) for p in fn.params))
            symbol = ast.Symbol(name=fn.name, type=ftype, kind="func")
            fn.symbol = symbol
            self.global_scope.define(symbol)

    # -- pass 2: function bodies ------------------------------------------

    def _resolve_function(self, fn: ast.Function) -> None:
        self._current_fn = fn
        self._next_slot = 0
        scope = Scope(self.global_scope)
        for param in fn.params:
            symbol = ast.Symbol(
                name=param.name,
                type=decay(param.type),
                kind="param",
                slot=self._alloc_slot(),
                func_name=fn.name,
            )
            param.symbol = symbol
            scope.define(symbol)
        self._resolve_block(fn.body, scope)
        fn.frame_size = self._next_slot
        self._current_fn = None

    def _alloc_slot(self) -> int:
        slot = self._next_slot
        self._next_slot += 1
        return slot

    def _resolve_block(self, block: ast.Block, parent: Scope) -> None:
        scope = Scope(parent)
        for stmt in block.stmts:
            self._resolve_stmt(stmt, scope)

    def _resolve_stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                if decl.init is not None:
                    self._resolve_expr(decl.init, scope)
                if decl.array_init is not None:
                    self._resolve_init_list(decl.array_init, scope)
                symbol = ast.Symbol(
                    name=decl.name,
                    type=decl.type,
                    kind="local",
                    slot=self._alloc_slot(),
                    func_name=self._current_fn.name if self._current_fn else "",
                )
                decl.symbol = symbol
                scope.define(symbol)
        elif isinstance(stmt, ast.ExprStmt):
            self._resolve_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.Block):
            self._resolve_block(stmt, scope)
        elif isinstance(stmt, ast.If):
            self._resolve_expr(stmt.cond, scope)
            self._resolve_block(stmt.then, scope)
            if stmt.els is not None:
                self._resolve_block(stmt.els, scope)
        elif isinstance(stmt, ast.While):
            self._resolve_expr(stmt.cond, scope)
            self._resolve_block(stmt.body, scope)
        elif isinstance(stmt, ast.DoWhile):
            self._resolve_block(stmt.body, scope)
            self._resolve_expr(stmt.cond, scope)
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if stmt.init is not None:
                self._resolve_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._resolve_expr(stmt.cond, inner)
            if stmt.step is not None:
                self._resolve_expr(stmt.step, inner)
            self._resolve_block(stmt.body, inner)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._resolve_expr(stmt.value, scope)
            if self._current_fn is not None:
                if stmt.value is None and self._current_fn.ret_type != VOID:
                    raise SemanticError(
                        f"{self._current_fn.name}: return without value in non-void function"
                    )
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass
        else:
            raise SemanticError(f"unknown statement: {type(stmt).__name__}")

    def _resolve_init_list(self, items: list, scope: Scope) -> None:
        for item in items:
            if isinstance(item, list):
                self._resolve_init_list(item, scope)
            else:
                self._resolve_expr(item, scope)

    def _resolve_expr(self, expr: ast.Expr, scope: Scope) -> None:
        if isinstance(expr, (ast.IntLit, ast.FloatLit)):
            return
        if isinstance(expr, ast.Name):
            symbol = scope.lookup(expr.name)
            if symbol is None:
                if expr.name in BUILTINS:
                    return  # builtins resolve by name at compile time
                raise SemanticError(f"undeclared identifier {expr.name!r}")
            expr.symbol = symbol
            return
        if isinstance(expr, ast.Unary):
            self._resolve_expr(expr.operand, scope)
            if expr.op == "&":
                target = expr.operand
                if isinstance(target, ast.Name) and target.symbol is not None:
                    if target.symbol.type.is_scalar:
                        target.symbol.address_taken = True
            return
        if isinstance(expr, ast.IncDec):
            self._resolve_expr(expr.target, scope)
            return
        if isinstance(expr, (ast.Binary, ast.Logical)):
            self._resolve_expr(expr.lhs, scope)
            self._resolve_expr(expr.rhs, scope)
            return
        if isinstance(expr, ast.Assign):
            self._resolve_expr(expr.target, scope)
            self._resolve_expr(expr.value, scope)
            return
        if isinstance(expr, ast.Ternary):
            self._resolve_expr(expr.cond, scope)
            self._resolve_expr(expr.then, scope)
            self._resolve_expr(expr.els, scope)
            return
        if isinstance(expr, ast.Call):
            self._resolve_expr(expr.func, scope)
            for arg in expr.args:
                self._resolve_expr(arg, scope)
            self._check_call_arity(expr)
            return
        if isinstance(expr, ast.Index):
            self._resolve_expr(expr.base, scope)
            self._resolve_expr(expr.index, scope)
            return
        raise SemanticError(f"unknown expression: {type(expr).__name__}")

    def _check_call_arity(self, call: ast.Call) -> None:
        if not isinstance(call.func, ast.Name):
            return  # indirect call: checked at runtime
        name = call.func.name
        if call.func.symbol is not None:
            symbol = call.func.symbol
            if isinstance(symbol.type, FuncType):
                if len(call.args) != len(symbol.type.params):
                    raise SemanticError(
                        f"call to {name!r}: expected {len(symbol.type.params)} args, "
                        f"got {len(call.args)}"
                    )
            return
        sig = BUILTINS.get(name)
        if sig is None:
            raise SemanticError(f"call to undeclared function {name!r}")
        if sig.variadic:
            if len(call.args) < sig.min_args:
                raise SemanticError(f"builtin {name!r} needs >= {sig.min_args} args")
        elif len(call.args) != sig.min_args:
            raise SemanticError(
                f"builtin {name!r} expects {sig.min_args} args, got {len(call.args)}"
            )

    # -- pass 3: constant-global detection ----------------------------------

    def _mark_constant_globals(self) -> None:
        """A global is treated as constant if it is declared const, or if no
        function ever (a) assigns it, (b) applies ++/-- or & to it, or
        (c) passes it (or a subobject) as a call argument.  Case (c) is
        conservative; pointer mod/ref analysis refines it later."""
        written: set[ast.Symbol] = set()
        escaped: set[ast.Symbol] = set()
        for fn in self.program.functions:
            for node in ast.walk(fn.body):
                if isinstance(node, ast.Assign):
                    root = _root_symbol(node.target)
                    if root is not None and root.kind == "global":
                        written.add(root)
                elif isinstance(node, ast.IncDec):
                    root = _root_symbol(node.target)
                    if root is not None and root.kind == "global":
                        written.add(root)
                elif isinstance(node, ast.Unary) and node.op == "&":
                    root = _root_symbol(node.operand)
                    if root is not None and root.kind == "global":
                        escaped.add(root)
                elif isinstance(node, ast.Call):
                    for arg in node.args:
                        root = _root_symbol(arg)
                        if (
                            root is not None
                            and root.kind == "global"
                            and not root.type.is_scalar
                        ):
                            escaped.add(root)
        for g in self.program.globals:
            symbol = g.decl.symbol
            assert symbol is not None
            if g.is_const:
                symbol.is_const = True
            elif symbol not in written and symbol not in escaped:
                symbol.is_const = True


def _root_symbol(expr: ast.Expr) -> Optional[ast.Symbol]:
    """The symbol at the base of an lvalue-ish expression, if any."""
    while True:
        if isinstance(expr, ast.Name):
            return expr.symbol
        if isinstance(expr, ast.Index):
            expr = expr.base
        elif isinstance(expr, ast.Unary) and expr.op in ("*", "&"):
            expr = expr.operand
        else:
            return None


class Typer:
    """On-demand expression typing over a resolved AST.

    Types are recomputed rather than cached on nodes so that AST rewrites
    (specialization, reuse transformation) can never leave stale types.
    """

    def __init__(self, program: ast.Program) -> None:
        self._functions = {fn.name: fn for fn in program.functions}

    def type_of(self, expr: ast.Expr) -> Type:
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.FloatLit):
            return FLOAT
        if isinstance(expr, ast.Name):
            if expr.symbol is not None:
                return expr.symbol.type
            sig = BUILTINS.get(expr.name)
            if sig is not None:
                return FuncType(sig.ret, ())
            raise SemanticError(f"unresolved name {expr.name!r}")
        if isinstance(expr, ast.Unary):
            inner = self.type_of(expr.operand)
            if expr.op == "*":
                inner = decay(inner)
                if isinstance(inner, PointerType):
                    return inner.elem
                raise SemanticError("dereference of non-pointer")
            if expr.op == "&":
                return PointerType(self.type_of(expr.operand))
            if expr.op in ("!", "~"):
                return INT
            return inner  # unary minus
        if isinstance(expr, ast.IncDec):
            return self.type_of(expr.target)
        if isinstance(expr, ast.Logical):
            return INT
        if isinstance(expr, ast.Binary):
            if expr.op == ",":
                return self.type_of(expr.rhs)
            lhs = decay(self.type_of(expr.lhs))
            rhs = decay(self.type_of(expr.rhs))
            if expr.op in ("==", "!=", "<", "<=", ">", ">="):
                return INT
            if isinstance(lhs, PointerType) and expr.op in ("+", "-"):
                if isinstance(rhs, PointerType) and expr.op == "-":
                    return INT
                return lhs
            if isinstance(rhs, PointerType) and expr.op == "+":
                return rhs
            if expr.op in ("%", "<<", ">>", "&", "|", "^"):
                return INT
            return common_arith_type(lhs, rhs)
        if isinstance(expr, ast.Assign):
            return self.type_of(expr.target)
        if isinstance(expr, ast.Ternary):
            then_t = decay(self.type_of(expr.then))
            els_t = decay(self.type_of(expr.els))
            if isinstance(then_t, PointerType):
                return then_t
            if isinstance(els_t, PointerType):
                return els_t
            return common_arith_type(then_t, els_t)
        if isinstance(expr, ast.Call):
            ftype = self.type_of(expr.func)
            if isinstance(ftype, FuncType):
                return ftype.ret
            if isinstance(ftype, PointerType) and isinstance(ftype.elem, FuncType):
                return ftype.elem.ret
            raise SemanticError("call of non-function value")
        if isinstance(expr, ast.Index):
            base = decay(self.type_of(expr.base))
            if isinstance(base, PointerType):
                return base.elem
            raise SemanticError("indexing a non-array value")
        raise SemanticError(f"cannot type expression {type(expr).__name__}")


def analyze(program: ast.Program) -> ast.Program:
    """Run semantic analysis in place and return the program."""
    return SemanticAnalyzer(program).run()
