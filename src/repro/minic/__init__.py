"""mini-C: the C subset our compiler scheme operates on.

Typical usage::

    from repro.minic import parse, analyze, format_program

    program = analyze(parse(source_text))
"""

from . import astnodes
from .astnodes import Program, Function, Symbol, walk
from .lexer import tokenize
from .parser import parse_expression, parse_program
from .pretty import format_expr, format_function, format_program, format_stmt
from .sema import SemanticAnalyzer, Typer, analyze
from .types import (
    FLOAT,
    INT,
    VOID,
    ArrayType,
    FuncType,
    PointerType,
    ScalarType,
    Type,
)


def parse(source: str) -> Program:
    """Parse mini-C source (alias of :func:`parse_program`)."""
    return parse_program(source)


def frontend(source: str) -> Program:
    """Parse + analyze in one step."""
    return analyze(parse_program(source))


__all__ = [
    "astnodes",
    "Program",
    "Function",
    "Symbol",
    "walk",
    "tokenize",
    "parse",
    "parse_program",
    "parse_expression",
    "frontend",
    "analyze",
    "SemanticAnalyzer",
    "Typer",
    "format_expr",
    "format_stmt",
    "format_function",
    "format_program",
    "INT",
    "FLOAT",
    "VOID",
    "ArrayType",
    "PointerType",
    "FuncType",
    "ScalarType",
    "Type",
]
