"""Per-tenant SLO accounting: rolling p99 latency and error budgets.

Each tenant's :class:`~repro.service.config.TenantPolicy` declares a
p99 latency target (``slo_p99_ms``), a tolerated bad-request fraction
(``slo_error_budget``), and a rolling window (``slo_window``).  The
server feeds every dispatched request's latency and status into a
:class:`SloTracker`, which maintains:

* **rolling p99** over the last ``slo_window`` requests (interpolated
  like :func:`repro.obs.metrics.histogram_quantiles`, but exact — the
  raw window is small enough to sort);
* **bad-request fraction** — a request is *bad* when it failed
  server-side (status >= 500, including 504 deadline misses) or ran
  slower than the p99 target; client errors (4xx) spend no budget;
* **error budget remaining** — the fraction of the tolerated bad
  budget still unspent, clamped to [0, 1].

All three are published as labeled gauges on the shared OpenMetrics
registry (plus a monotone violations counter), so `/metrics` answers
"is tenant X inside its SLO" without any extra endpoint.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional

from ..obs.metrics import MetricsRegistry
from .config import TenantPolicy

__all__ = ["SloTracker"]


class SloTracker:
    """Rolling SLO window for one tenant."""

    def __init__(
        self,
        tenant: str,
        policy: TenantPolicy,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.tenant = tenant
        self.policy = policy
        self.registry = registry
        self._lock = threading.Lock()
        # (latency_seconds, bad) pairs, oldest first
        self._window: deque[tuple[float, bool]] = deque(maxlen=policy.slo_window)
        self.requests = 0
        self.violations = 0
        if registry is not None:
            registry.gauge(
                "repro_service_slo_target_seconds",
                "Configured per-tenant p99 latency target.",
            ).labels(tenant=tenant).set(policy.slo_p99_ms / 1000.0)

    def record(self, latency_seconds: float, status: int) -> bool:
        """Fold one finished request in; returns True when it was bad."""
        target = self.policy.slo_p99_ms / 1000.0
        bad = status >= 500 or latency_seconds > target
        with self._lock:
            self._window.append((latency_seconds, bad))
            self.requests += 1
            if bad:
                self.violations += 1
            p99 = self._p99_locked()
            budget_remaining = self._budget_remaining_locked()
        if self.registry is not None:
            labels = {"tenant": self.tenant}
            self.registry.gauge(
                "repro_service_slo_p99_seconds",
                "Rolling p99 request latency per tenant.",
            ).labels(**labels).set(p99)
            self.registry.gauge(
                "repro_service_slo_error_budget_remaining",
                "Fraction of the tenant's error budget still unspent (rolling window).",
            ).labels(**labels).set(budget_remaining)
            if bad:
                self.registry.counter(
                    "repro_service_slo_violations",
                    "Requests that failed server-side or exceeded the p99 target.",
                ).labels(**labels).inc()
        return bad

    def _p99_locked(self) -> float:
        if not self._window:
            return 0.0
        ordered = sorted(latency for latency, _ in self._window)
        if len(ordered) == 1:
            return ordered[0]
        # exact interpolated quantile over the raw window
        pos = 0.99 * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def _budget_remaining_locked(self) -> float:
        if not self._window:
            return 1.0
        bad_fraction = sum(1 for _, bad in self._window if bad) / len(self._window)
        budget = self.policy.slo_error_budget
        if budget <= 0.0:
            return 1.0 if bad_fraction == 0.0 else 0.0
        return max(0.0, min(1.0, 1.0 - bad_fraction / budget))

    def snapshot(self) -> dict:
        """JSON-ready view for ``/v1/stats``."""
        with self._lock:
            return {
                "tenant": self.tenant,
                "target_p99_ms": self.policy.slo_p99_ms,
                "error_budget": self.policy.slo_error_budget,
                "window": len(self._window),
                "requests": self.requests,
                "violations": self.violations,
                "p99_ms": self._p99_locked() * 1000.0,
                "error_budget_remaining": self._budget_remaining_locked(),
            }
