"""Reuse-as-a-service: the multi-tenant compile-and-run server.

The serving layer of the facade: one process holds per-tenant caches of
compiled programs (content-addressed over source + options), pools of
:class:`repro.Session` objects whose warmed reuse tables are shared
across requests, and the same OpenMetrics registry the rest of the
observability stack scrapes.

Quickstart::

    from repro.service import ServiceConfig, ServiceThread

    with ServiceThread(ServiceConfig(port=0)) as server:
        print(server.url)          # POST /v1/compile, /v1/run; GET /v1/stats
        ...

    # or load-test it:
    from repro.service import run_loadgen, smoke_config
    report = run_loadgen(smoke_config())

CLI: ``repro serve`` / ``repro loadgen``.
"""

from .client import ServiceClient, ServiceReply
from .config import (
    ServiceConfig,
    TenantPolicy,
    compile_options_from_wire,
    governor_from_wire,
    pipeline_config_from_wire,
)
from .loadgen import LoadgenConfig, run_loadgen, smoke_config
from .server import ReuseService, ServiceThread
from .slo import SloTracker
from .state import ProgramEntry, ServiceState, TenantState
from .trace import TraceStore

__all__ = [
    "ReuseService",
    "ServiceThread",
    "ServiceClient",
    "ServiceReply",
    "ServiceConfig",
    "TenantPolicy",
    "ServiceState",
    "TenantState",
    "ProgramEntry",
    "LoadgenConfig",
    "run_loadgen",
    "smoke_config",
    "SloTracker",
    "TraceStore",
    "compile_options_from_wire",
    "governor_from_wire",
    "pipeline_config_from_wire",
]
