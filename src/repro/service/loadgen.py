"""Load generator for the reuse service — `repro loadgen`.

Boots an in-process :class:`~repro.service.server.ServiceThread` (or
targets an already-running server), then drives N concurrent client
sessions over the registered workloads.  Each session owns one
keep-alive connection and plays a tenant: compile its workload once,
then stream input chunks through ``POST /v1/run`` against the returned
program id.  Sessions spread across tenants, governed/static tables,
and both execution backends, so one loadgen run exercises the tenant
program caches, the shared warmed tables, and the governor.

Every served output is checked against a **direct** facade run of the
same chunk with ``reuse=False`` — the paper's transparency claim, end
to end through the service: reuse tables (however warm, however shared)
must never change a value or an output checksum.  Backpressure (429)
is honored via ``Retry-After`` and retried; evictions (404) recompile;
anything else after retries is an error.

The report — exact p50/p90/p99 latency, throughput, retry and
verification counts, and the server's own ``/v1/stats`` — is returned
as a dict and optionally written to ``BENCH_service.json``.  With
``trace=True`` every request carries a traceparent and the report's
``tracing`` section joins the slowest runs to their assembled span
trees fetched from ``/v1/trace/<id>`` (``trace_out`` dumps one JSONL
record per traced run).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import asdict, dataclass, field
from math import ceil
from typing import Optional

from .. import api
from ..errors import ConfigError
from ..runtime.governor import GovernorPolicy
from ..workloads import ALL_WORKLOADS
from .client import ServiceClient
from .config import ServiceConfig, TenantPolicy
from .server import ServiceThread

__all__ = ["LoadgenConfig", "smoke_config", "run_loadgen"]

_BACKENDS = ("closures", "vm")

# input-consumption granule per workload family: a chunk boundary must
# never cut inside one __input_avail() read group (MPEG2 reads an 8x8
# block per check, GNU Go one 4-tuple move)
_GRANULES = (("MPEG2", 64), ("GNUGO", 4))


def _granule(name: str) -> int:
    for prefix, granule in _GRANULES:
        if name.startswith(prefix):
            return granule
    return 1


@dataclass(frozen=True)
class LoadgenConfig:
    """Shape of one load-generation run."""

    sessions: int = 1000
    runs_per_session: int = 4
    tenants: int = 2
    workloads: Optional[tuple] = None  # workload names; None = all 14
    input_prefix: int = 256
    chunk: int = 64
    max_pending: int = 256
    workers: int = 0
    request_timeout: float = 60.0
    alternate_backends: bool = True
    governed_share: bool = True
    max_retries: int = 100
    out: Optional[str] = None
    # request tracing: every client sends a traceparent, the report joins
    # the slowest runs to their span trees, and trace_out collects one
    # JSONL record per traced run (plus the fetched slowest trees)
    trace: bool = False
    trace_out: Optional[str] = None
    trace_slowest: int = 3

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ConfigError(f"sessions must be >= 1, got {self.sessions}")
        if self.runs_per_session < 1:
            raise ConfigError(
                f"runs_per_session must be >= 1, got {self.runs_per_session}"
            )
        if self.tenants < 1:
            raise ConfigError(f"tenants must be >= 1, got {self.tenants}")
        if self.chunk < 1 or self.input_prefix < self.chunk:
            raise ConfigError("need input_prefix >= chunk >= 1")
        if self.trace_slowest < 1:
            raise ConfigError(f"trace_slowest must be >= 1, got {self.trace_slowest}")


def smoke_config(
    out: Optional[str] = None, trace_out: Optional[str] = None
) -> LoadgenConfig:
    """The bounded CI shape: small fleet, four workloads, both backends,
    with request tracing on so the smoke also proves trace reassembly."""
    return LoadgenConfig(
        sessions=32,
        runs_per_session=2,
        tenants=2,
        workloads=("G721_encode", "MPEG2_decode", "RASTA", "GNUGO_drift"),
        input_prefix=128,
        chunk=32,
        max_pending=64,
        out=out,
        trace=True,
        trace_out=trace_out,
    )


def _percentiles_ms(samples: list, quantiles=(0.5, 0.9, 0.99)) -> dict:
    if not samples:
        return {"count": 0}
    ordered = sorted(samples)
    n = len(ordered)
    out = {"count": n, "mean_ms": 1000.0 * sum(ordered) / n, "max_ms": 1000.0 * ordered[-1]}
    for q in quantiles:
        out[f"p{int(q * 100)}_ms"] = 1000.0 * ordered[min(n - 1, ceil(q * n) - 1)]
    return out


class _Tally:
    """Mutable counters shared by all session coroutines (single loop)."""

    def __init__(self) -> None:
        self.latency: dict[str, list] = {"compile": [], "run": []}
        self.per_workload: dict[str, list] = {}
        self.compiles = 0
        self.runs = 0
        self.cache_hits = 0
        self.retries_backpressure = 0
        self.retries_evicted = 0
        self.checked = 0
        self.mismatches = 0
        self.errors: list = []
        # (elapsed_seconds, trace_id, workload, tenant) per traced run
        self.traced_runs: list[tuple] = []

    def error(self, what: str) -> None:
        if len(self.errors) < 50:  # keep the report bounded
            self.errors.append(what)
        else:
            self.errors[-1] = f"... and more (last: {what})"


def _session_plan(index: int, config: LoadgenConfig, workloads: list) -> dict:
    workload = workloads[index % len(workloads)]
    governed = config.governed_share and (index // len(workloads)) % 2 == 1
    options: dict = {"governed": governed}
    if config.alternate_backends:
        options["backend"] = _BACKENDS[index % 2]
    return {
        "tenant": f"tenant-{index % config.tenants}",
        "workload": workload,
        "options": options,
    }


async def _exchange(client, tally, config, kind, send, *, surface_404=False):
    """One logical request with backpressure retries; returns
    ``(reply, elapsed)`` on success, ``(reply, None)`` for a surfaced
    404 (caller recompiles), ``(None, None)`` after errors."""
    for _ in range(config.max_retries + 1):
        start = time.perf_counter()
        try:
            reply = await send()
        except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
            await client.close()
            tally.error(f"{kind}: connection error {exc}")
            return None, None
        elapsed = time.perf_counter() - start
        if reply.status == 429:
            tally.retries_backpressure += 1
            await asyncio.sleep(max(reply.retry_after(), 0.01))
            continue
        if reply.status == 404 and surface_404:
            tally.retries_evicted += 1
            return reply, None  # caller recompiles and retries by program id
        if not reply.ok:
            detail = reply.payload.get("error") if isinstance(reply.payload, dict) else reply.payload
            tally.error(f"{kind}: HTTP {reply.status}: {detail}")
            return None, None
        tally.latency[kind].append(elapsed)
        return reply, elapsed
    tally.error(f"{kind}: gave up after {config.max_retries} retries")
    return None, None


async def _run_session(index, config, host, port, workloads, chunks, expected, tally):
    plan = _session_plan(index, config, workloads)
    workload = plan["workload"]
    client = ServiceClient(host, port, trace=config.trace)
    try:
        reply, _ = await _exchange(
            client, tally, config, "compile",
            lambda: client.compile(plan["tenant"], workload.source, plan["options"]),
        )
        if reply is None:
            return
        tally.compiles += 1
        if reply.payload.get("cached"):
            tally.cache_hits += 1
        program = reply.payload["program"]
        workload_chunks = chunks[workload.name]
        for r in range(config.runs_per_session):
            chunk_index = r % len(workload_chunks)
            inputs = workload_chunks[chunk_index]
            reply, elapsed = await _exchange(
                client, tally, config, "run",
                lambda: client.run(plan["tenant"], program=program, inputs=inputs),
                surface_404=True,
            )
            if reply is not None and reply.status == 404:
                # evicted under cache pressure: recompile, then retry once
                again, _ = await _exchange(
                    client, tally, config, "compile",
                    lambda: client.compile(
                        plan["tenant"], workload.source, plan["options"]
                    ),
                )
                if again is None:
                    continue
                program = again.payload["program"]
                reply, elapsed = await _exchange(
                    client, tally, config, "run",
                    lambda: client.run(plan["tenant"], program=program, inputs=inputs),
                )
            if reply is None:
                continue
            tally.runs += 1
            tally.per_workload.setdefault(workload.name, []).append(elapsed)
            if config.trace and reply.trace_id is not None and elapsed is not None:
                tally.traced_runs.append(
                    (elapsed, reply.trace_id, workload.name, plan["tenant"])
                )
            want_value, want_checksum = expected[(workload.name, chunk_index)]
            got = reply.payload
            tally.checked += 1
            if got["value"] != want_value or got["output_checksum"] != want_checksum:
                tally.mismatches += 1
                tally.error(
                    f"MISMATCH {workload.name} chunk {chunk_index}: "
                    f"value {got['value']!r} != {want_value!r} or checksum "
                    f"{got['output_checksum']} != {want_checksum}"
                )
    finally:
        await client.close()


def _reference_outputs(workloads: list, chunks: dict) -> dict:
    """Direct (service-free) facade runs of every chunk with reuse off —
    the oracle every served output must match bit-for-bit."""
    expected = {}
    for workload in workloads:
        program = api.compile(workload.source, api.CompileOptions(reuse=False))
        for chunk_index, inputs in enumerate(chunks[workload.name]):
            result = program.run(inputs)
            expected[(workload.name, chunk_index)] = (
                result.value,
                result.output_checksum,
            )
    return expected


async def _drive(config, host, port, workloads, chunks, expected, tally):
    tasks = [
        asyncio.create_task(
            _run_session(i, config, host, port, workloads, chunks, expected, tally)
        )
        for i in range(config.sessions)
    ]
    await asyncio.gather(*tasks)


def run_loadgen(
    config: Optional[LoadgenConfig] = None,
    *,
    host: Optional[str] = None,
    port: Optional[int] = None,
) -> dict:
    """Run the load shape against an in-process service (default) or an
    external one (``host``/``port``); returns the report dict."""
    config = config if config is not None else LoadgenConfig()
    by_name = {w.name: w for w in ALL_WORKLOADS}
    names = config.workloads if config.workloads is not None else tuple(by_name)
    unknown = sorted(set(names) - set(by_name))
    if unknown:
        raise ConfigError(f"unknown workload(s): {', '.join(unknown)}")
    workloads = [by_name[name] for name in names]
    chunks = {}
    for workload in workloads:
        granule = _granule(workload.name)
        chunk = max(granule, config.chunk - config.chunk % granule)
        prefix = max(chunk, config.input_prefix - config.input_prefix % granule)
        inputs = workload.default_inputs()[:prefix]
        chunks[workload.name] = [
            inputs[i : i + chunk] for i in range(0, len(inputs), chunk)
        ]
    expected = _reference_outputs(workloads, chunks)

    tenants = {}
    if config.tenants > 1:
        # one tenant runs a tighter governor than the default policy —
        # the per-tenant governance knob under real traffic
        tenants["tenant-1"] = TenantPolicy(
            governor=GovernorPolicy(window=128, reprobe_after=1024)
        )
    service_config = ServiceConfig(
        max_pending=config.max_pending,
        workers=config.workers,
        request_timeout=config.request_timeout,
        tenants=tenants,
    )

    tally = _Tally()
    own_server: Optional[ServiceThread] = None
    if host is None or port is None:
        own_server = ServiceThread(service_config).start()
        host, port = own_server.service.config.host, own_server.port
    try:
        started = time.perf_counter()
        asyncio.run(_drive(config, host, port, workloads, chunks, expected, tally))
        wall = time.perf_counter() - started
        stats_payload = asyncio.run(_fetch_stats(host, port))
        tracing = (
            asyncio.run(_collect_traces(host, port, config, tally))
            if config.trace
            else None
        )
    finally:
        if own_server is not None:
            own_server.close()

    requests = len(tally.latency["compile"]) + len(tally.latency["run"])
    report = {
        "schema": "repro/bench-service/v1",
        "config": asdict(config),
        "totals": {
            "sessions": config.sessions,
            "requests": requests,
            "compiles": tally.compiles,
            "compile_cache_hits": tally.cache_hits,
            "runs": tally.runs,
            "errors": len(tally.errors),
            "retries_backpressure": tally.retries_backpressure,
            "retries_evicted": tally.retries_evicted,
            "wall_seconds": wall,
            "throughput_rps": requests / wall if wall > 0 else 0.0,
        },
        "latency": {
            kind: _percentiles_ms(samples)
            for kind, samples in tally.latency.items()
        },
        "per_workload": {
            name: _percentiles_ms(samples)
            for name, samples in sorted(tally.per_workload.items())
        },
        "verification": {"checked": tally.checked, "mismatches": tally.mismatches},
        "service_stats": stats_payload,
        "errors": tally.errors,
        "ok": not tally.errors and tally.mismatches == 0 and tally.runs > 0,
    }
    if tracing is not None:
        report["tracing"] = tracing
    if config.out:
        with open(config.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report


async def _fetch_stats(host: str, port: int):
    async with ServiceClient(host, port) as client:
        reply = await client.stats()
        return reply.payload if reply.ok else None


async def _collect_traces(host, port, config: LoadgenConfig, tally: _Tally) -> dict:
    """Join the slowest traced runs to their server-side span trees and
    (optionally) dump one JSONL record per traced run to ``trace_out``."""
    ordered = sorted(tally.traced_runs, key=lambda t: t[0], reverse=True)
    slowest = []
    orphan_spans = 0
    async with ServiceClient(host, port) as client:
        for elapsed, trace_id, workload, tenant in ordered[: config.trace_slowest]:
            reply = await client.trace_tree(trace_id)
            if not reply.ok or not isinstance(reply.payload, dict):
                continue
            record = reply.payload
            tree = record.get("tree") or {}
            orphan_spans += len(tree.get("orphans", ()))
            slowest.append(
                {
                    "trace_id": trace_id,
                    "workload": workload,
                    "tenant": tenant,
                    "client_ms": round(elapsed * 1000.0, 3),
                    "server_ms": record.get("duration_ms"),
                    "status": record.get("status"),
                    "span_count": tree.get("span_count"),
                    "event_count": tree.get("event_count"),
                    "orphan_spans": len(tree.get("orphans", ())),
                    "tree": tree,
                }
            )
    section = {
        "traced_runs": len(tally.traced_runs),
        "slowest": slowest,
        "orphan_spans": orphan_spans,
    }
    if config.trace_out:
        with open(config.trace_out, "w", encoding="utf-8") as fh:
            for elapsed, trace_id, workload, tenant in tally.traced_runs:
                fh.write(
                    json.dumps(
                        {
                            "trace_id": trace_id,
                            "workload": workload,
                            "tenant": tenant,
                            "ms": round(elapsed * 1000.0, 3),
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
            for record in slowest:
                fh.write(json.dumps({"slowest": record}, sort_keys=True) + "\n")
    return section
