"""Configuration and wire codec for the multi-tenant reuse service.

Two frozen dataclasses mirror the facade's :class:`repro.CompileOptions`
style: :class:`TenantPolicy` is what one tenant is allowed to hold
(program-cache capacity, concurrency, a default
:class:`~repro.runtime.governor.GovernorPolicy` for governed tables) and
:class:`ServiceConfig` is the whole server (bind address, worker pool,
queue bound, timeouts, per-tenant policies).

The wire codec (:func:`compile_options_from_wire`) turns the JSON bodies
of ``POST /v1/compile`` / ``POST /v1/run`` into validated
:class:`repro.CompileOptions` values.  It is strict: unknown keys are a
:class:`~repro.errors.ConfigError` (surfaced as HTTP 400), never ignored
— a typo'd knob must not silently compile under defaults and then share
a content-keyed cache slot with the intended program.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields, replace
from typing import Mapping, Optional

from ..api import CompileOptions
from ..errors import ConfigError
from ..reuse.pipeline import PipelineConfig
from ..runtime.governor import GovernorPolicy

__all__ = [
    "TenantPolicy",
    "ServiceConfig",
    "compile_options_from_wire",
    "governor_from_wire",
    "pipeline_config_from_wire",
]


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant resource and governance policy.

    ``governor`` (when set) becomes the default
    :class:`~repro.runtime.governor.GovernorPolicy` baked into every
    governed table this tenant compiles without an explicit
    ``config.governor`` of its own — the multi-tenant knob of the
    paper's online governor.
    """

    governor: Optional[GovernorPolicy] = None
    max_programs: int = 32
    max_concurrency: int = 8
    # Service-level objectives, accounted per tenant by the server
    # (rolling p99 latency vs target; error budget = tolerated fraction
    # of bad requests — errors or SLO-violating latencies — over the
    # rolling window).  Published as gauges on the shared registry.
    slo_p99_ms: float = 500.0
    slo_error_budget: float = 0.01
    slo_window: int = 512

    def __post_init__(self) -> None:
        if self.max_programs < 1:
            raise ConfigError(f"max_programs must be >= 1, got {self.max_programs}")
        if self.max_concurrency < 1:
            raise ConfigError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.governor is not None and not isinstance(self.governor, GovernorPolicy):
            raise ConfigError(
                f"governor must be a GovernorPolicy, got {type(self.governor).__name__}"
            )
        if self.slo_p99_ms <= 0:
            raise ConfigError(f"slo_p99_ms must be > 0, got {self.slo_p99_ms}")
        if not 0.0 <= self.slo_error_budget <= 1.0:
            raise ConfigError(
                f"slo_error_budget must be in [0, 1], got {self.slo_error_budget}"
            )
        if self.slo_window < 8:
            raise ConfigError(f"slo_window must be >= 8, got {self.slo_window}")


@dataclass(frozen=True)
class ServiceConfig:
    """Every knob of :class:`~repro.service.server.ReuseService`.

    ``port=0`` binds an ephemeral port (read it back from
    ``service.port``), matching the ExpositionServer convention.
    ``max_pending`` bounds the whole admission queue: a request arriving
    while that many are in flight is rejected with 429 and a
    ``Retry-After`` hint instead of queueing without bound.
    ``request_timeout`` caps one compile-and-run; a request that blows
    it gets 504 (the worker thread finishes in the background — the
    simulator is pure compute with no side effects beyond warming the
    program's own tables).

    ``trace`` selects request tracing: ``"auto"`` traces exactly the
    requests that arrive with a ``traceparent`` header (the client opted
    in), ``"all"`` traces every request, ``"off"`` traces none.
    Assembled span trees are kept in a bounded in-memory store served by
    ``GET /v1/trace/<id>``; ``trace_capacity`` bounds it.
    ``log_capacity`` sizes the structured event-log ring behind
    ``GET /v1/events`` (0 disables the log entirely).
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 0  # 0 -> os.cpu_count()
    max_pending: int = 64
    request_timeout: float = 30.0
    drain_grace: float = 10.0
    retry_after: float = 1.0
    max_body_bytes: int = 8 * 1024 * 1024
    trace: str = "auto"
    trace_capacity: int = 256
    log_capacity: int = 2048
    default_policy: TenantPolicy = field(default_factory=TenantPolicy)
    tenants: Mapping[str, TenantPolicy] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigError(f"workers must be >= 0, got {self.workers}")
        if self.max_pending < 1:
            raise ConfigError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.trace not in ("auto", "all", "off"):
            raise ConfigError(
                f"trace must be 'auto', 'all', or 'off', got {self.trace!r}"
            )
        if self.trace_capacity < 1:
            raise ConfigError(
                f"trace_capacity must be >= 1, got {self.trace_capacity}"
            )
        if self.log_capacity < 0:
            raise ConfigError(f"log_capacity must be >= 0, got {self.log_capacity}")
        if self.request_timeout <= 0:
            raise ConfigError(
                f"request_timeout must be > 0, got {self.request_timeout}"
            )
        if self.drain_grace < 0:
            raise ConfigError(f"drain_grace must be >= 0, got {self.drain_grace}")
        if self.max_body_bytes < 1024:
            raise ConfigError(
                f"max_body_bytes must be >= 1024, got {self.max_body_bytes}"
            )
        for name, policy in dict(self.tenants).items():
            if not isinstance(policy, TenantPolicy):
                raise ConfigError(
                    f"tenant {name!r} policy must be a TenantPolicy, "
                    f"got {type(policy).__name__}"
                )

    def resolved_workers(self) -> int:
        return self.workers or min(32, (os.cpu_count() or 4) + 2)

    def policy_for(self, tenant: str) -> TenantPolicy:
        return dict(self.tenants).get(tenant, self.default_policy)

    def replace(self, **changes) -> "ServiceConfig":
        return replace(self, **changes)


# -- wire codec ---------------------------------------------------------------


def _check_keys(what: str, payload: dict, allowed) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ConfigError(f"{what} got unexpected key(s): {', '.join(unknown)}")


def governor_from_wire(payload: Optional[dict]) -> Optional[GovernorPolicy]:
    """``{"window": 128, ...}`` → :class:`GovernorPolicy` (None passes
    through).  Field validation is the policy's own ``__post_init__``."""
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise ConfigError(f"governor must be an object, got {type(payload).__name__}")
    allowed = tuple(f.name for f in fields(GovernorPolicy))
    _check_keys("governor", payload, allowed)
    return GovernorPolicy(**payload)


def pipeline_config_from_wire(
    payload: Optional[dict], default_governor: Optional[GovernorPolicy] = None
) -> Optional[PipelineConfig]:
    """``{"min_executions": 8, "governor": {...}, ...}`` →
    :class:`PipelineConfig`.  A tenant's default governor applies when
    the request does not carry its own."""
    if payload is None:
        if default_governor is None:
            return None
        return PipelineConfig(governor=default_governor)
    if not isinstance(payload, dict):
        raise ConfigError(f"config must be an object, got {type(payload).__name__}")
    allowed = tuple(f.name for f in fields(PipelineConfig))
    _check_keys("config", payload, allowed)
    kwargs = dict(payload)
    governor = governor_from_wire(kwargs.pop("governor", None))
    if governor is None:
        governor = default_governor
    if governor is not None:
        kwargs["governor"] = governor
    return PipelineConfig(**kwargs)


_WIRE_OPTION_KEYS = (
    "opt",
    "reuse",
    "governed",
    "backend",
    "config",
    "profile_inputs",
)


def compile_options_from_wire(
    payload: Optional[dict], policy: Optional[TenantPolicy] = None
) -> CompileOptions:
    """The ``options`` object of a compile/run request →
    :class:`repro.CompileOptions`.

    Observer knobs (``trace``/``profile``) are deliberately not part of
    the wire surface: they attach process-local objects that cannot be
    serialized back, and the service's differential guarantee is about
    outputs, not traces.
    """
    if payload is None:
        payload = {}
    if not isinstance(payload, dict):
        raise ConfigError(f"options must be an object, got {type(payload).__name__}")
    _check_keys("options", payload, _WIRE_OPTION_KEYS)
    kwargs = dict(payload)
    default_governor = policy.governor if policy is not None else None
    kwargs["config"] = pipeline_config_from_wire(
        kwargs.get("config"), default_governor
    )
    if kwargs["config"] is None:
        del kwargs["config"]
    if kwargs.get("profile_inputs") is not None and not isinstance(
        kwargs["profile_inputs"], (list, tuple)
    ):
        raise ConfigError("profile_inputs must be a list of numbers")
    return CompileOptions(**kwargs)
