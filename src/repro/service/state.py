"""Shared state of the reuse service: tenants, program caches, sessions.

One :class:`TenantState` per tenant name, created on first use.  Each
holds an LRU-ordered cache of :class:`ProgramEntry` values keyed by
:meth:`repro.CompileOptions.content_key` — the content hash of the
source text plus every semantic compile option — so two requests with
the same program land on the same entry regardless of which connection
they arrived on.

Every entry owns one :class:`repro.Session` (created with
``_persist_tables`` semantics via :meth:`Session.compile`), which means
**reuse tables are shared across requests**: entries committed while
serving one request serve hits to the next.  That sharing is safe
because :class:`~repro.api.CompiledProgram` serializes its lazy
profile/table construction behind a lock, and it is *semantically
invisible* because reuse tables never change outputs — the property the
differential tests pin.

Capacity is enforced per tenant (``TenantPolicy.max_programs``): the
least-recently-used entry is evicted and its session closed, releasing
the warmed tables.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from ..api import CompileOptions, CompiledProgram, Session
from ..errors import ConfigError
from ..minic import frontend
from ..obs.metrics import MetricsRegistry
from .config import ServiceConfig, TenantPolicy
from .slo import SloTracker

__all__ = ["ProgramEntry", "TenantState", "ServiceState"]


@dataclass
class ProgramEntry:
    """One cached compiled program and the session that owns its tables."""

    key: str
    source: str
    options: CompileOptions
    session: Session
    program: CompiledProgram
    runs: int = 0
    # serialized by TenantState.lock; runs increment under it too

    def close(self) -> None:
        self.session.close()


class TenantState:
    """One tenant's program cache, session pool, and counters."""

    def __init__(
        self, name: str, policy: TenantPolicy, registry: Optional[MetricsRegistry]
    ) -> None:
        self.name = name
        self.policy = policy
        self.registry = registry
        self.lock = threading.Lock()
        self.programs: "OrderedDict[str, ProgramEntry]" = OrderedDict()
        self.slo = SloTracker(name, policy, registry)
        self.compiles = 0
        self.cache_hits = 0
        self.evictions = 0
        self.runs = 0

    # -- program cache -------------------------------------------------------

    def get_or_compile(
        self, source: str, options: CompileOptions
    ) -> tuple[ProgramEntry, bool]:
        """The cached entry for (source, options), compiling on miss;
        returns ``(entry, was_cached)`` and refreshes LRU order."""
        key = options.content_key(source)
        with self.lock:
            entry = self.programs.get(key)
            if entry is not None:
                self.programs.move_to_end(key)
                self.cache_hits += 1
                return entry, True
            # reuse programs lex/parse lazily (at first run); validate
            # eagerly so /v1/compile answers 400 for bad source, not a
            # deferred failure on some later /v1/run
            frontend(source)
            session = Session(options, metrics=self.registry)
            entry = ProgramEntry(
                key=key,
                source=source,
                options=options,
                session=session,
                program=session.compile(source),
            )
            self.programs[key] = entry
            self.compiles += 1
            evicted = []
            while len(self.programs) > self.policy.max_programs:
                _, stale = self.programs.popitem(last=False)
                evicted.append(stale)
                self.evictions += 1
            self._publish_gauges()
        for stale in evicted:
            stale.close()
        return entry, False

    def lookup(self, key: str) -> Optional[ProgramEntry]:
        """The entry for a previously returned program id (or None)."""
        with self.lock:
            entry = self.programs.get(key)
            if entry is not None:
                self.programs.move_to_end(key)
            return entry

    def record_run(self, entry: ProgramEntry) -> None:
        with self.lock:
            self.runs += 1
            entry.runs += 1

    def close(self) -> None:
        with self.lock:
            entries = list(self.programs.values())
            self.programs.clear()
            self._publish_gauges()
        for entry in entries:
            entry.close()

    def _publish_gauges(self) -> None:
        if self.registry is not None:
            self.registry.gauge(
                "repro_service_programs", "Cached compiled programs per tenant."
            ).labels(tenant=self.name).set(len(self.programs))

    # -- stats ---------------------------------------------------------------

    def stats(self) -> dict:
        with self.lock:
            programs = []
            hits = misses = 0
            for entry in self.programs.values():
                table_probes = table_hits = 0
                result = entry.program.result
                if result is not None and entry.program._tables:
                    for table in entry.program._tables.values():
                        table_probes += table.stats.probes
                        table_hits += table.stats.hits
                hits += table_hits
                misses += table_probes - table_hits
                programs.append(
                    {
                        "program": entry.key,
                        "opt": entry.options.opt,
                        "governed": entry.options.governed,
                        "backend": entry.options.backend,
                        "runs": entry.runs,
                        "table_probes": table_probes,
                        "table_hits": table_hits,
                    }
                )
            return {
                "tenant": self.name,
                "programs": programs,
                "compiles": self.compiles,
                "cache_hits": self.cache_hits,
                "evictions": self.evictions,
                "runs": self.runs,
                "table_probes": hits + misses,
                "table_hits": hits,
                "slo": self.slo.snapshot(),
            }


class ServiceState:
    """All tenants plus the shared registry; thread-safe."""

    def __init__(
        self, config: ServiceConfig, registry: Optional[MetricsRegistry] = None
    ) -> None:
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry()
        self._tenants: dict[str, TenantState] = {}
        self._lock = threading.Lock()

    def tenant(self, name: str) -> TenantState:
        if not name or not isinstance(name, str):
            raise ConfigError(f"tenant must be a non-empty string, got {name!r}")
        tenant = self._tenants.get(name)
        if tenant is None:
            with self._lock:
                tenant = self._tenants.get(name)
                if tenant is None:
                    tenant = TenantState(
                        name, self.config.policy_for(name), self.registry
                    )
                    self._tenants[name] = tenant
        return tenant

    def tenants(self) -> list[TenantState]:
        with self._lock:
            return list(self._tenants.values())

    def stats(self) -> dict:
        return {"tenants": [tenant.stats() for tenant in self.tenants()]}

    def close(self) -> None:
        with self._lock:
            tenants = list(self._tenants.values())
            self._tenants.clear()
        for tenant in tenants:
            tenant.close()
