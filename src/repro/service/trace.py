"""Bounded in-memory store of assembled request traces.

The server traces each opted-in request into its own
:class:`~repro.obs.tracer.Tracer`, assembles the result into one span
tree (:func:`repro.obs.tracer.assemble_tree`), and deposits it here
keyed by trace id.  ``GET /v1/trace/<id>`` serves individual trees and
``GET /v1/trace`` lists the most recent / slowest requests, which is
what the dashboard's slow-request panel and the loadgen report join
against.

The store is a plain LRU ring: inserting past capacity evicts the
oldest trace.  Everything is held as JSON-ready dicts — no live object
leaks out of the request that produced it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

__all__ = ["TraceStore"]


class TraceStore:
    """Most-recent assembled span trees, keyed by trace id."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, dict]" = OrderedDict()
        self.stored = 0
        self.evicted = 0

    def put(self, record: dict) -> None:
        """Insert one request record (must carry ``trace_id``)."""
        trace_id = record["trace_id"]
        with self._lock:
            self._traces[trace_id] = record
            self._traces.move_to_end(trace_id)
            self.stored += 1
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)
                self.evicted += 1

    def get(self, trace_id: str) -> Optional[dict]:
        with self._lock:
            return self._traces.get(trace_id)

    def recent(self, limit: int = 20) -> list[dict]:
        """Request summaries (no trees), newest first."""
        with self._lock:
            records = list(self._traces.values())
        return [self._summary(r) for r in reversed(records[-max(0, limit):])]

    def slowest(self, limit: int = 5) -> list[dict]:
        """Request summaries sorted by duration, slowest first."""
        with self._lock:
            records = list(self._traces.values())
        records.sort(key=lambda r: r.get("duration_ms", 0.0), reverse=True)
        return [self._summary(r) for r in records[: max(0, limit)]]

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    @staticmethod
    def _summary(record: dict) -> dict:
        return {key: value for key, value in record.items() if key != "tree"}
