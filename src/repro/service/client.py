"""Tiny asyncio client for the reuse service (loadgen and tests).

One :class:`ServiceClient` is one persistent keep-alive connection
speaking the same JSON-over-HTTP/1.1 envelope the server serves.  It is
not a general HTTP client: ``Content-Length`` responses only, no
redirects, no TLS — exactly the envelope
:mod:`repro.service.http` produces.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from ..errors import ConfigError

__all__ = ["ServiceClient", "ServiceReply"]


class ServiceReply:
    """Status + parsed JSON body (+ headers) of one exchange."""

    __slots__ = ("status", "headers", "payload")

    def __init__(self, status: int, headers: dict, payload) -> None:
        self.status = status
        self.headers = headers
        self.payload = payload

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def retry_after(self) -> float:
        try:
            return float(self.headers.get("retry-after", "0"))
        except ValueError:
            return 0.0


class ServiceClient:
    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "ServiceClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> bool:
        await self.close()
        return False

    async def request(self, method: str, path: str, payload=None) -> ServiceReply:
        if self._writer is None:
            await self.connect()
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        self._writer.write(head + body)
        await self._writer.drain()
        return await self._read_reply()

    async def _read_reply(self) -> ServiceReply:
        status_line = await self._reader.readuntil(b"\r\n")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ConfigError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readuntil(b"\r\n")
            if line == b"\r\n":
                break
            name, _, value = line[:-2].decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        payload = None
        if raw and headers.get("content-type", "").startswith("application/json"):
            payload = json.loads(raw.decode("utf-8"))
        elif raw:
            payload = raw.decode("utf-8", errors="replace")
        if headers.get("connection", "keep-alive").lower() == "close":
            await self.close()
        return ServiceReply(status, headers, payload)

    # -- convenience wrappers ------------------------------------------------

    async def compile(self, tenant: str, source: str, options=None) -> ServiceReply:
        payload = {"tenant": tenant, "source": source}
        if options is not None:
            payload["options"] = options
        return await self.request("POST", "/v1/compile", payload)

    async def run(self, tenant: str, *, program=None, source=None, options=None,
                  inputs=(), entry=None) -> ServiceReply:
        payload = {"tenant": tenant, "inputs": list(inputs)}
        if program is not None:
            payload["program"] = program
        if source is not None:
            payload["source"] = source
        if options is not None:
            payload["options"] = options
        if entry is not None:
            payload["entry"] = entry
        return await self.request("POST", "/v1/run", payload)

    async def stats(self, tenant: Optional[str] = None) -> ServiceReply:
        path = "/v1/stats" + (f"?tenant={tenant}" if tenant else "")
        return await self.request("GET", path)

    async def healthz(self) -> ServiceReply:
        return await self.request("GET", "/healthz")

    async def metrics(self) -> ServiceReply:
        return await self.request("GET", "/metrics")
