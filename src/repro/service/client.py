"""Tiny asyncio client for the reuse service (loadgen and tests).

One :class:`ServiceClient` is one persistent keep-alive connection
speaking the same JSON-over-HTTP/1.1 envelope the server serves.  It is
not a general HTTP client: ``Content-Length`` responses only, no
redirects, no TLS — exactly the envelope
:mod:`repro.service.http` produces.

Two serving-layer behaviors live here rather than in callers:

* **Stale keep-alive retry.**  A server may close an idle kept-alive
  connection between our requests; the failure only surfaces when the
  next request hits the dead socket.  That one case — and only that
  case — is retried transparently on a fresh connection.  A request
  that fails on a connection we just opened is NOT retried: the
  request may have reached the server, and replaying it is the
  caller's idempotency decision, not ours.
* **Trace-context injection.**  With ``trace=True`` every request
  carries a W3C-style ``traceparent`` header (fresh 128-bit trace id,
  synthetic client-side span id), which is the server's opt-in signal
  to trace the request.  The ids of the last exchange are kept on
  ``last_trace_id`` so callers can fetch ``/v1/trace/<id>`` afterwards.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from ..errors import ConfigError
from ..obs.tracer import format_traceparent, new_span_id, new_trace_id

__all__ = ["ServiceClient", "ServiceReply"]


class ServiceReply:
    """Status + parsed JSON body (+ headers) of one exchange."""

    __slots__ = ("status", "headers", "payload")

    def __init__(self, status: int, headers: dict, payload) -> None:
        self.status = status
        self.headers = headers
        self.payload = payload

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def retry_after(self) -> float:
        try:
            return float(self.headers.get("retry-after", "0"))
        except ValueError:
            return 0.0

    @property
    def trace_id(self) -> Optional[str]:
        return self.headers.get("x-repro-trace-id")


class ServiceClient:
    def __init__(self, host: str, port: int, trace: bool = False) -> None:
        self.host = host
        self.port = port
        self.trace = trace
        self.last_trace_id: Optional[str] = None
        self.retries = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "ServiceClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> bool:
        await self.close()
        return False

    async def request(self, method: str, path: str, payload=None) -> ServiceReply:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        traceparent = None
        if self.trace:
            self.last_trace_id = new_trace_id()
            traceparent = format_traceparent(self.last_trace_id, new_span_id())
        # retry exactly once, and only when the failed attempt went out
        # on a connection reused from a previous exchange (stale
        # keep-alive) — a fresh connection's failure is surfaced
        reused = self._writer is not None
        try:
            return await self._exchange(method, path, body, traceparent)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            await self.close()
            if not reused:
                raise
            self.retries += 1
            return await self._exchange(method, path, body, traceparent)

    async def _exchange(
        self, method: str, path: str, body: bytes, traceparent: Optional[str]
    ) -> ServiceReply:
        if self._writer is None:
            await self.connect()
        extra = f"Traceparent: {traceparent}\r\n" if traceparent else ""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        self._writer.write(head + body)
        await self._writer.drain()
        return await self._read_reply()

    async def _read_reply(self) -> ServiceReply:
        status_line = await self._reader.readuntil(b"\r\n")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ConfigError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readuntil(b"\r\n")
            if line == b"\r\n":
                break
            name, _, value = line[:-2].decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        payload = None
        if raw and headers.get("content-type", "").startswith("application/json"):
            payload = json.loads(raw.decode("utf-8"))
        elif raw:
            payload = raw.decode("utf-8", errors="replace")
        if headers.get("connection", "keep-alive").lower() == "close":
            await self.close()
        return ServiceReply(status, headers, payload)

    # -- convenience wrappers ------------------------------------------------

    async def compile(self, tenant: str, source: str, options=None) -> ServiceReply:
        payload = {"tenant": tenant, "source": source}
        if options is not None:
            payload["options"] = options
        return await self.request("POST", "/v1/compile", payload)

    async def run(self, tenant: str, *, program=None, source=None, options=None,
                  inputs=(), entry=None) -> ServiceReply:
        payload = {"tenant": tenant, "inputs": list(inputs)}
        if program is not None:
            payload["program"] = program
        if source is not None:
            payload["source"] = source
        if options is not None:
            payload["options"] = options
        if entry is not None:
            payload["entry"] = entry
        return await self.request("POST", "/v1/run", payload)

    async def stats(self, tenant: Optional[str] = None) -> ServiceReply:
        path = "/v1/stats" + (f"?tenant={tenant}" if tenant else "")
        return await self.request("GET", path)

    async def healthz(self) -> ServiceReply:
        return await self.request("GET", "/healthz")

    async def metrics(self) -> ServiceReply:
        return await self.request("GET", "/metrics")

    async def trace_tree(self, trace_id: str) -> ServiceReply:
        return await self.request("GET", f"/v1/trace/{trace_id}")

    async def traces(self, limit: int = 20) -> ServiceReply:
        return await self.request("GET", f"/v1/trace?limit={limit}")

    async def events(
        self,
        since: int = 0,
        wait: float = 0.0,
        level: str = "debug",
        limit: int = 500,
    ) -> ServiceReply:
        path = f"/v1/events?since={since}&wait={wait:g}&level={level}&limit={limit}"
        return await self.request("GET", path)
