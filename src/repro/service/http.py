"""Minimal asyncio HTTP/1.1 framing for the reuse service.

The service speaks just enough HTTP for JSON request/response with
keep-alive — hand-rolled on :mod:`asyncio` streams because the stdlib
has no async HTTP server and the container policy forbids new
dependencies.  Scope is deliberate: ``Content-Length`` bodies only (no
chunked encoding), a bounded request line / header block / body, and
case-insensitive header access.  Anything outside that envelope gets a
clean 4xx instead of undefined behavior.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import parse_qs, urlsplit

__all__ = ["Request", "Response", "read_request", "write_response", "json_response"]

_MAX_LINE = 8192
_MAX_HEADERS = 64
# Total header-block byte bound: without it a peer could legally send
# _MAX_HEADERS lines of _MAX_LINE bytes each (~512 KiB) per request.
_MAX_HEADER_BLOCK = 32 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(Exception):
    """Malformed request framing; carries the HTTP status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    method: str
    path: str
    query: dict
    headers: dict
    body: bytes
    # late-bound request context, set by the server during dispatch:
    # the tenant named in the payload (for SLO accounting) and the
    # per-request Tracer when this request is traced (kept untyped so
    # the framing layer stays import-free of the obs stack)
    tenant: Optional[str] = None
    tracer: Optional[object] = None

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self):
        if not self.body:
            return None
        return json.loads(self.body.decode("utf-8"))


@dataclass
class Response:
    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict = field(default_factory=dict)


def json_response(payload, status: int = 200, headers: Optional[dict] = None) -> Response:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return Response(status=status, body=body, headers=dict(headers or {}))


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""  # clean EOF between requests
        raise ProtocolError(400, "truncated request") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(400, "request line too long") from None
    if len(line) > _MAX_LINE:
        raise ProtocolError(400, "request line too long")
    return line[:-2]


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Optional[Request]:
    """Parse one request off the stream; None on clean EOF.

    Raises :class:`ProtocolError` on malformed framing — the connection
    handler answers with the carried status and closes.
    """
    start = await _read_line(reader)
    if not start:
        return None
    parts = start.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, "malformed request line")
    method, target, _version = parts
    split = urlsplit(target)
    query = {
        key: values[-1] for key, values in parse_qs(split.query).items()
    }
    headers: dict[str, str] = {}
    header_bytes = 0
    for _ in range(_MAX_HEADERS + 1):
        line = await _read_line(reader)
        if not line:
            break
        header_bytes += len(line) + 2
        if header_bytes > _MAX_HEADER_BLOCK:
            raise ProtocolError(400, "header block too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, "malformed header")
        headers[name.strip().lower()] = value.strip()
    else:
        raise ProtocolError(400, "too many headers")
    if "transfer-encoding" in headers:
        raise ProtocolError(400, "chunked request bodies are not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(400, f"bad Content-Length {length_text!r}") from None
    if length < 0:
        raise ProtocolError(400, f"bad Content-Length {length_text!r}")
    if length > max_body_bytes:
        raise ProtocolError(413, f"body exceeds {max_body_bytes} bytes")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError(400, "truncated body") from None
    return Request(
        method=method.upper(),
        path=split.path,
        query=query,
        headers=headers,
        body=body,
    )


async def write_response(
    writer: asyncio.StreamWriter, response: Response, keep_alive: bool
) -> None:
    reason = _REASONS.get(response.status, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    writer.write(head + response.body)
    await writer.drain()
