"""The multi-tenant compile-and-run server (reuse-as-a-service).

:class:`ReuseService` is an asyncio HTTP server exposing the facade
(:mod:`repro.api`) over five endpoints:

* ``POST /v1/compile`` — ``{"tenant", "source", "options"}`` → a
  content-addressed program id; compiling the same program twice is a
  cache hit on the tenant's program cache.
* ``POST /v1/run`` — ``{"tenant", "inputs", ...}`` plus either
  ``"program"`` (a previous compile's id) or inline
  ``"source"``/``"options"`` → one measured execution.  Repeated runs of
  one program share its session-warmed reuse tables, so the service
  accumulates hits across requests — the deployment story of the
  paper's scheme.
* ``GET /v1/stats`` — per-tenant program caches, run counts, aggregate
  table telemetry, and SLO accounting (``?tenant=`` narrows to one).
* ``GET /metrics`` — the shared registry as OpenMetrics (same format as
  :class:`~repro.obs.metrics.ExpositionServer`).
* ``GET /healthz`` — liveness plus drain state.
* ``GET /v1/trace`` / ``GET /v1/trace/<id>`` — recent/slowest request
  summaries and one request's assembled span tree.  A request is traced
  when it carries a ``traceparent`` header (``ServiceConfig.trace`` =
  ``"auto"``; ``"all"`` traces everything, ``"off"`` nothing): the
  server parses the header, opens an ``http.request`` root span in its
  own per-request :class:`~repro.obs.tracer.Tracer`, and the executor
  closure installs that tracer thread-locally, so every pipeline span,
  table probe stat, governor transition, and ledger verdict recorded
  below :mod:`repro.api` lands in the request's tree.  The response
  carries ``X-Repro-Trace-Id``.
* ``GET /v1/events`` — the structured event log
  (:class:`~repro.obs.log.EventLog`) as a long-pollable cursor stream
  (``?since=&wait=&level=&limit=``); ``repro tail`` renders it.

Execution model: the event loop only parses and routes; compiles and
runs execute on a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
(the simulator is GIL-bound pure Python — threads suffice and share the
warmed tables).  Admission control is a single in-flight bound
(``ServiceConfig.max_pending``): beyond it requests are rejected with
429 and a ``Retry-After`` hint rather than queued without bound.  Each
admitted request races a ``request_timeout`` — losers get 504 (the
worker finishes harmlessly in the background; runs have no side effects
beyond warming the program's own tables).  :meth:`drain` flips new work
to 503 while waiting for in-flight requests, bounded by
``drain_grace``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from ..api import RunOptions
from ..errors import ConfigError, ReproError
from ..obs.log import EventLog, set_event_log
from ..obs.metrics import OPENMETRICS_CONTENT_TYPE, MetricsRegistry
from ..obs.tracer import Tracer, assemble_tree, new_trace_id, parse_traceparent, set_tracer
from .config import ServiceConfig, compile_options_from_wire
from .http import (
    ProtocolError,
    Request,
    Response,
    json_response,
    read_request,
    write_response,
)
from .state import ProgramEntry, ServiceState, TenantState
from .trace import TraceStore

__all__ = ["ReuseService", "ServiceThread"]

_LATENCY_BUCKETS = (0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, 60.0)

# /v1/events long-poll knobs: poll cadence and the cap on one wait
_EVENTS_POLL_SECONDS = 0.05
_EVENTS_MAX_WAIT = 30.0


def _trace_id_of(request: Request) -> Optional[str]:
    return request.tracer.trace_id if request.tracer is not None else None


def _root_span_id_of(request: Request) -> Optional[int]:
    tracer = request.tracer
    if tracer is None or not tracer.spans:
        return None
    return tracer.spans[0].span_id


class ReuseService:
    """The asyncio server; all methods must run on one event loop."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.state = ServiceState(self.config, registry)
        self.registry = self.state.registry
        self.traces = TraceStore(self.config.trace_capacity)
        self.event_log: Optional[EventLog] = (
            EventLog(capacity=self.config.log_capacity)
            if self.config.log_capacity > 0
            else None
        )
        self._previous_log: Optional[EventLog] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._semaphores: dict[str, asyncio.Semaphore] = {}
        self._connections: set = set()
        self._pending = 0
        self._draining = False
        self._idle: Optional[asyncio.Event] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "ReuseService":
        if self._server is not None:
            return self
        self._idle = asyncio.Event()
        self._idle.set()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.resolved_workers(),
            thread_name_prefix="repro-service",
        )
        if self.event_log is not None:
            # process-local install so the governor / perf gate emitters
            # running on worker threads land in the service's ring
            self._previous_log = set_event_log(self.event_log)
        self._server = await asyncio.start_server(
            self._serve_connection, host=self.config.host, port=self.config.port
        )
        self._emit("service.start", host=self.config.host, workers=self.config.resolved_workers())
        return self

    @property
    def port(self) -> int:
        if self._server is None:
            raise ConfigError("service is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def pending(self) -> int:
        return self._pending

    async def drain(self, grace: Optional[float] = None) -> bool:
        """Stop admitting work (new requests get 503) and wait up to
        ``grace`` seconds for in-flight requests; True when idle."""
        self._draining = True
        grace = self.config.drain_grace if grace is None else grace
        if self._pending == 0:
            return True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=grace)
            return True
        except asyncio.TimeoutError:
            return False

    async def aclose(self) -> None:
        """Drain, stop the listener, shut the worker pool, release every
        tenant's programs.  Idempotent."""
        self._draining = True
        if self._server is not None:
            self._emit("service.stop", level="warning")
            await self.drain()
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            if self.event_log is not None:
                set_event_log(self._previous_log)
                self._previous_log = None
        # idle keep-alive connections sit in read_request forever; cancel
        # their handler tasks so loop shutdown finds nothing half-open
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self.state.close()

    # -- connection handling -------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader, self.config.max_body_bytes)
                except ProtocolError as exc:
                    response = json_response({"error": str(exc)}, status=exc.status)
                    await write_response(writer, response, keep_alive=False)
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                keep_alive = request.keep_alive
                await write_response(writer, response, keep_alive=keep_alive)
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            pass  # server shutdown: drop the connection, exit quietly
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-exchange; nothing to answer
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass

    async def _dispatch(self, request: Request) -> Response:
        start = time.perf_counter()
        self._begin_trace(request)
        root = None
        if request.tracer is not None:
            root = request.tracer.span(
                "http.request",
                category="service",
                method=request.method,
                path=request.path,
            )
            root.__enter__()
        try:
            response = await self._route(request)
        finally:
            if root is not None:
                root.__exit__(None, None, None)
        elapsed = time.perf_counter() - start
        self._observe(request, response.status, elapsed)
        if request.tracer is not None:
            response.headers.setdefault("X-Repro-Trace-Id", request.tracer.trace_id)
            self._store_trace(request, response.status, elapsed)
        return response

    async def _route(self, request: Request) -> Response:
        route = (request.method, request.path)
        try:
            if route == ("GET", "/healthz"):
                response = json_response(
                    {
                        "status": "draining" if self._draining else "ok",
                        "pending": self._pending,
                    }
                )
            elif route == ("GET", "/metrics"):
                response = Response(
                    body=self.registry.render_openmetrics().encode("utf-8"),
                    content_type=OPENMETRICS_CONTENT_TYPE,
                )
            elif route == ("GET", "/v1/stats"):
                response = self._handle_stats(request)
            elif route == ("GET", "/v1/trace"):
                response = self._handle_trace_index(request)
            elif request.method == "GET" and request.path.startswith("/v1/trace/"):
                response = self._handle_trace_get(request)
            elif route == ("GET", "/v1/events"):
                response = await self._handle_events(request)
            elif route == ("POST", "/v1/compile"):
                response = await self._admitted(request, self._handle_compile)
            elif route == ("POST", "/v1/run"):
                response = await self._admitted(request, self._handle_run)
            elif request.path in (
                "/healthz",
                "/metrics",
                "/v1/stats",
                "/v1/trace",
                "/v1/events",
                "/v1/compile",
                "/v1/run",
            ):
                response = json_response({"error": "method not allowed"}, status=405)
            else:
                response = json_response({"error": f"no route {request.path}"}, status=404)
        except _UnknownProgram as exc:
            response = json_response({"error": str(exc)}, status=404)
        except ReproError as exc:
            response = json_response({"error": str(exc)}, status=400)
        except (ValueError, TypeError, KeyError) as exc:
            response = json_response({"error": f"bad request: {exc}"}, status=400)
        except Exception as exc:  # the server must outlive any one request
            response = json_response(
                {"error": f"internal error: {type(exc).__name__}: {exc}"}, status=500
            )
        return response

    def _observe(self, request: Request, status: int, elapsed: float) -> None:
        endpoint = request.path
        if request.method == "GET" and endpoint.startswith("/v1/trace/"):
            endpoint = "/v1/trace/{id}"  # one label value, not one per trace
        self.registry.counter(
            "repro_service_requests", "HTTP requests served, by endpoint and status."
        ).labels(endpoint=endpoint, status=str(status)).inc()
        self.registry.histogram(
            "repro_service_request_seconds",
            "Request latency in wall-clock seconds.",
            buckets=_LATENCY_BUCKETS,
        ).labels(endpoint=endpoint).observe(elapsed)
        if request.tenant is not None and endpoint in ("/v1/compile", "/v1/run"):
            bad = self.state.tenant(request.tenant).slo.record(elapsed, status)
            if bad:
                self._emit(
                    "slo.violation",
                    level="warning",
                    tenant=request.tenant,
                    endpoint=endpoint,
                    status=status,
                    ms=round(elapsed * 1000.0, 3),
                    trace_id=_trace_id_of(request),
                )
        if endpoint in ("/v1/compile", "/v1/run") or status >= 500:
            self._emit(
                "service.request",
                level="warning" if status >= 500 else "info",
                endpoint=endpoint,
                status=status,
                ms=round(elapsed * 1000.0, 3),
                tenant=request.tenant,
                trace_id=_trace_id_of(request),
                span_id=_root_span_id_of(request),
            )

    # -- request tracing -----------------------------------------------------

    def _begin_trace(self, request: Request) -> None:
        """Attach a per-request tracer according to ``ServiceConfig.trace``.

        ``auto`` traces exactly the requests whose client sent a
        ``traceparent``; malformed headers mean untraced, never an
        error.  The tracer object is private to this request, so
        concurrently traced requests never share span state.
        """
        mode = self.config.trace
        if mode == "off":
            return
        context = parse_traceparent(request.headers.get("traceparent"))
        if context is None and mode != "all":
            return
        trace_id, remote_parent = context if context else (new_trace_id(), None)
        request.tracer = Tracer(
            enabled=True, trace_id=trace_id, remote_parent=remote_parent
        )

    def _store_trace(self, request: Request, status: int, elapsed: float) -> None:
        tracer = request.tracer
        # snapshot: a 504'd worker may still be appending spans
        payload = {
            "spans": [s.to_dict() for s in list(tracer.spans)],
            "events": [dict(e) for e in list(tracer.events)],
        }
        self.traces.put(
            {
                "trace_id": tracer.trace_id,
                "method": request.method,
                "path": request.path,
                "tenant": request.tenant,
                "status": status,
                "duration_ms": round(elapsed * 1000.0, 3),
                "ts_us": int(time.time() * 1_000_000),
                "tree": assemble_tree(payload, remote_parent=tracer.remote_parent),
            }
        )

    def _in_request(self, request: Request, fn, *args):
        """A zero-arg closure for the executor that runs ``fn`` with the
        request's tracer installed thread-locally (so every
        ``get_tracer()`` emitter below the facade traces into it)."""
        tracer = request.tracer
        if tracer is None:
            return lambda: fn(*args)

        def call():
            previous = set_tracer(tracer)
            try:
                return fn(*args)
            finally:
                set_tracer(previous)

        return call

    def _emit(self, name: str, level: str = "info", **args) -> None:
        if self.event_log is not None:
            args = {k: v for k, v in args.items() if v is not None}
            self.event_log.emit(name, level=level, **args)

    # -- admission control ---------------------------------------------------

    async def _admitted(self, request: Request, handler) -> Response:
        if self._draining:
            self._reject("draining", request)
            return json_response({"error": "service is draining"}, status=503)
        if self._pending >= self.config.max_pending:
            self._reject("backpressure", request)
            return json_response(
                {"error": "too many in-flight requests"},
                status=429,
                headers={"Retry-After": f"{self.config.retry_after:g}"},
            )
        payload = request.json()
        if not isinstance(payload, dict):
            raise ConfigError("request body must be a JSON object")
        self._pending += 1
        self._idle.clear()
        gauge = self.registry.gauge(
            "repro_service_inflight", "Admitted requests currently in flight."
        )
        gauge.inc()
        try:
            return await asyncio.wait_for(
                handler(request, payload), timeout=self.config.request_timeout
            )
        except asyncio.TimeoutError:
            self._reject("timeout", request)
            return json_response(
                {"error": f"request exceeded {self.config.request_timeout:g}s"},
                status=504,
            )
        finally:
            self._pending -= 1
            gauge.dec()
            if self._pending == 0:
                self._idle.set()

    def _reject(self, reason: str, request: Optional[Request] = None) -> None:
        self.registry.counter(
            "repro_service_rejected", "Requests rejected, by reason."
        ).labels(reason=reason).inc()
        self._emit(
            "service.reject",
            level="warning",
            reason=reason,
            trace_id=_trace_id_of(request) if request is not None else None,
        )

    def _semaphore(self, tenant: str) -> asyncio.Semaphore:
        semaphore = self._semaphores.get(tenant)
        if semaphore is None:
            policy = self.config.policy_for(tenant)
            semaphore = asyncio.Semaphore(policy.max_concurrency)
            self._semaphores[tenant] = semaphore
        return semaphore

    # -- handlers ------------------------------------------------------------

    @staticmethod
    def _tenant_name(payload: dict) -> str:
        tenant = payload.get("tenant")
        if not tenant or not isinstance(tenant, str):
            raise ConfigError("request must name a tenant")
        return tenant

    @staticmethod
    def _source(payload: dict) -> str:
        source = payload.get("source")
        if not source or not isinstance(source, str):
            raise ConfigError("request must carry mini-C source")
        return source

    @staticmethod
    def _inputs(payload: dict) -> list:
        inputs = payload.get("inputs", [])
        if not isinstance(inputs, list) or not all(
            isinstance(v, (int, float)) and not isinstance(v, bool) for v in inputs
        ):
            raise ConfigError("inputs must be a list of numbers")
        return inputs

    async def _handle_compile(self, request: Request, payload: dict) -> Response:
        name = self._tenant_name(payload)
        request.tenant = name
        source = self._source(payload)
        tenant = self.state.tenant(name)
        options = compile_options_from_wire(payload.get("options"), tenant.policy)
        loop = asyncio.get_running_loop()
        async with self._semaphore(name):
            entry, cached = await loop.run_in_executor(
                self._executor,
                self._in_request(request, tenant.get_or_compile, source, options),
            )
        return json_response(
            {
                "tenant": name,
                "program": entry.key,
                "cached": cached,
                "opt": entry.options.opt,
                "reuse": entry.options.reuse,
                "governed": entry.options.governed,
                "backend": entry.options.backend,
            }
        )

    async def _handle_run(self, request: Request, payload: dict) -> Response:
        name = self._tenant_name(payload)
        request.tenant = name
        tenant = self.state.tenant(name)
        inputs = self._inputs(payload)
        entry_name = payload.get("entry")
        if entry_name is not None and not isinstance(entry_name, str):
            raise ConfigError("entry must be a function name")
        loop = asyncio.get_running_loop()
        async with self._semaphore(name):
            entry, cached = await self._resolve_program(loop, tenant, request, payload)
            run_options = RunOptions(entry=entry_name)
            result = await loop.run_in_executor(
                self._executor,
                self._in_request(
                    request,
                    entry.session.run_program,
                    entry.program,
                    inputs,
                    run_options,
                ),
            )
        tenant.record_run(entry)
        tables = {"probes": 0, "hits": 0}
        for stats in result.table_stats.values():
            tables["probes"] += stats.probes
            tables["hits"] += stats.hits
        return json_response(
            {
                "tenant": name,
                "program": entry.key,
                "cached": cached,
                "value": result.value,
                "cycles": result.cycles,
                "seconds": result.seconds,
                "energy_joules": result.energy_joules,
                "output_checksum": result.output_checksum,
                "tables": tables,
                "governor": {
                    seg_id: snap["state"] for seg_id, snap in result.governor.items()
                },
            }
        )

    async def _resolve_program(
        self, loop, tenant: TenantState, request: Request, payload: dict
    ) -> tuple[ProgramEntry, bool]:
        """``program`` id → cache lookup (404 via ConfigError when gone);
        otherwise inline source compiles (or hits) the tenant cache."""
        key = payload.get("program")
        if key is not None:
            if payload.get("source") is not None:
                raise ConfigError("pass source or program, not both")
            entry = tenant.lookup(key)
            if entry is None:
                raise _UnknownProgram(key)
            return entry, True
        source = self._source(payload)
        options = compile_options_from_wire(payload.get("options"), tenant.policy)
        return await loop.run_in_executor(
            self._executor,
            self._in_request(request, tenant.get_or_compile, source, options),
        )

    def _handle_stats(self, request: Request) -> Response:
        tenant = request.query.get("tenant")
        if tenant:
            payload = self.state.tenant(tenant).stats()
        else:
            payload = self.state.stats()
        payload = dict(payload)
        payload["pending"] = self._pending
        payload["draining"] = self._draining
        payload["traces"] = len(self.traces)
        return json_response(payload)

    def _handle_trace_index(self, request: Request) -> Response:
        limit = _int_query(request, "limit", 20, low=1, high=self.traces.capacity)
        return json_response(
            {
                "stored": len(self.traces),
                "capacity": self.traces.capacity,
                "recent": self.traces.recent(limit),
                "slowest": self.traces.slowest(min(limit, 5)),
            }
        )

    def _handle_trace_get(self, request: Request) -> Response:
        trace_id = request.path[len("/v1/trace/"):]
        record = self.traces.get(trace_id)
        if record is None:
            return json_response(
                {"error": f"unknown trace {trace_id!r} (evicted or never stored)"},
                status=404,
            )
        return json_response(record)

    async def _handle_events(self, request: Request) -> Response:
        """Cursor read of the event-log ring, with optional long-poll.

        ``?since=<seq>`` returns records newer than the cursor;
        ``&wait=<seconds>`` (capped) holds the request open until a
        matching record arrives; ``&level=`` filters, ``&limit=``
        bounds one page.
        """
        log = self.event_log
        if log is None:
            return json_response({"error": "event log is disabled"}, status=404)
        since = _int_query(request, "since", 0, low=0, high=1 << 62)
        limit = _int_query(request, "limit", 500, low=1, high=log.capacity)
        level = request.query.get("level", "debug")
        try:
            wait = min(float(request.query.get("wait", "0")), _EVENTS_MAX_WAIT)
        except ValueError:
            raise ConfigError("wait must be a number of seconds") from None
        try:
            result = log.since(since, level=level, limit=limit)
        except ValueError as exc:
            raise ConfigError(str(exc)) from None
        if not result["records"] and wait > 0:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + wait
            # polling, not a blocking Condition wait: the loop thread
            # must stay free to serve the requests that generate events
            while loop.time() < deadline:
                await asyncio.sleep(_EVENTS_POLL_SECONDS)
                result = log.since(since, level=level, limit=limit)
                if result["records"] or self._draining:
                    break
        return json_response(result)


def _int_query(request: Request, name: str, default: int, low: int, high: int) -> int:
    text = request.query.get(name)
    if text is None:
        return default
    try:
        value = int(text)
    except ValueError:
        raise ConfigError(f"{name} must be an integer, got {text!r}") from None
    if not low <= value <= high:
        raise ConfigError(f"{name} must be in [{low}, {high}], got {value}")
    return value


class _UnknownProgram(ReproError):
    def __init__(self, key: str) -> None:
        super().__init__(f"unknown program {key!r} (evicted or never compiled)")


class ServiceThread:
    """A :class:`ReuseService` on a private event loop in a daemon thread.

    The synchronous adapter the CLI, the load generator, and the tests
    use: ``start()`` blocks until the port is bound; ``close()`` drains
    and stops.  Usable as a context manager.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._config = config
        self._registry = registry
        self.service: Optional[ReuseService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ServiceThread":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ConfigError("service thread failed to start within 30s")
        if self._error is not None:
            raise ConfigError(f"service failed to start: {self._error}")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface startup/loop failures to start()
            self._error = exc
            self._started.set()

    async def _main(self) -> None:
        self.service = ReuseService(self._config, registry=self._registry)
        await self.service.start()
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            await self.service.aclose()

    @property
    def port(self) -> int:
        if self.service is None:
            raise ConfigError("service thread is not started")
        return self.service.port

    @property
    def url(self) -> str:
        if self.service is None:
            raise ConfigError("service thread is not started")
        return self.service.url

    @property
    def registry(self) -> MetricsRegistry:
        if self.service is None:
            raise ConfigError("service thread is not started")
        return self.service.registry

    @property
    def event_log(self) -> Optional[EventLog]:
        if self.service is None:
            raise ConfigError("service thread is not started")
        return self.service.event_log

    @property
    def traces(self) -> TraceStore:
        if self.service is None:
            raise ConfigError("service thread is not started")
        return self.service.traces

    def drain(self, grace: Optional[float] = None) -> bool:
        """Synchronously drain the service from any thread: new requests
        get 503 while in-flight ones finish (bounded by ``grace``)."""
        if self._loop is None or self.service is None:
            raise ConfigError("service thread is not started")
        future = asyncio.run_coroutine_threadsafe(
            self.service.drain(grace), self._loop
        )
        return future.result(timeout=(grace or self.service.config.drain_grace) + 30)

    def close(self) -> None:
        """Drain and stop the service; joins the loop thread. Idempotent."""
        thread = self._thread
        if thread is None or not thread.is_alive():
            return
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        thread.join(timeout=60)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
