"""Liveness analysis (backward may-problem over the CFG).

The paper uses liveness to find a segment's *output variables*: "a
variable computed by the code segment is an output variable if it remains
live at the exit of the code segment".

At function exit the live set is not empty: mutable globals stay live
(callers can read them), and so does anything a pointer parameter may
point at (writes through it are visible to the caller).  Callers build
that exit set with :func:`function_exit_live`.
"""

from __future__ import annotations

from typing import Optional

from ..minic import astnodes as ast
from ..minic.types import PointerType
from ..ir.cfg import CFG
from .dataflow import DataflowResult, solve_backward
from .pointer import PointsTo
from .usedef import UseDefExtractor


def function_exit_live(
    func: ast.Function,
    program: ast.Program,
    points_to: Optional[PointsTo] = None,
) -> frozenset:
    """Symbols live at a function's exit: mutable globals + pointees of
    pointer parameters (excluding the function's own dead locals)."""
    live: set[ast.Symbol] = set()
    for g in program.globals:
        if g.decl.symbol is not None and not g.decl.symbol.is_const:
            live.add(g.decl.symbol)
    if points_to is not None:
        for param in func.params:
            if param.symbol is not None and isinstance(param.symbol.type, PointerType):
                for target in points_to.pointees(param.symbol):
                    # a pointee that is another function's local outlives
                    # this call only if it is the caller's storage; keep it
                    # (conservative).
                    if target.func_name != func.name:
                        live.add(target)
    return frozenset(live)


class Liveness:
    """Solved liveness over one function's CFG."""

    def __init__(
        self,
        cfg: CFG,
        extractor: UseDefExtractor,
        exit_live: frozenset = frozenset(),
    ) -> None:
        self.cfg = cfg
        self.extractor = extractor
        self._node_ud = {}
        gen: dict[int, frozenset] = {}
        kill: dict[int, frozenset] = {}
        for node in cfg:
            if node.ast_node is None:
                continue
            if isinstance(node.ast_node, ast.Stmt):
                ud = extractor.of_stmt(node.ast_node)
            else:
                ud = extractor.of_expr(node.ast_node)
            self._node_ud[node.nid] = ud
            gen[node.nid] = frozenset(ud.uses)
            kill[node.nid] = frozenset(ud.defs)  # only strong defs kill

        def transfer(nid: int, out: frozenset) -> frozenset:
            return gen.get(nid, frozenset()) | (out - kill.get(nid, frozenset()))

        self.result: DataflowResult = solve_backward(cfg, transfer, exit_value=exit_live)

    def live_in(self, nid: int) -> frozenset:
        return self.result.in_sets[nid]

    def live_out(self, nid: int) -> frozenset:
        return self.result.out_sets[nid]

    def use_def(self, nid: int):
        return self._node_ud.get(nid)

    def live_at_region_exit(self, region: set[int]) -> frozenset:
        """Symbols live when control leaves the region: the union of
        live-in over every outside successor of a region node."""
        live: set = set()
        for target in self.cfg.region_exit_targets(region):
            live |= self.result.in_sets[target]
        return frozenset(live)

    def region_defs(self, region: set[int]) -> frozenset:
        """All symbols (strongly or weakly) defined inside the region."""
        defined: set = set()
        for nid in region:
            ud = self._node_ud.get(nid)
            if ud is not None:
                defined |= ud.defs | ud.weak_defs
        return frozenset(defined)

    def region_outputs(self, region: set[int]) -> frozenset:
        """The paper's output set: variables computed in the region that
        remain live at the region exit."""
        return self.region_defs(region) & self.live_at_region_exit(region)
