"""Generic iterative dataflow framework over statement-level CFGs.

A worklist solver for forward and backward set-based problems.  Clients
supply per-node transfer functions (gen/kill over symbol sets) and a meet
(union for the may-problems used here).  All client analyses — liveness,
upward-exposed reads, reaching definitions, and the code-coverage
invariance analysis — instantiate this solver.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generic, Hashable, TypeVar

from ..ir.cfg import CFG

T = TypeVar("T", bound=Hashable)

Transfer = Callable[[int, frozenset], frozenset]


class DataflowResult(Generic[T]):
    """Per-node IN/OUT sets of a solved dataflow problem."""

    def __init__(self, in_sets: dict[int, frozenset], out_sets: dict[int, frozenset]) -> None:
        self.in_sets = in_sets
        self.out_sets = out_sets

    def live_in(self, nid: int) -> frozenset:
        return self.in_sets[nid]

    def live_out(self, nid: int) -> frozenset:
        return self.out_sets[nid]


def solve_forward(
    cfg: CFG,
    transfer: Transfer,
    entry_value: frozenset = frozenset(),
) -> DataflowResult:
    """Solve a forward may-problem: IN(n) = U OUT(p); OUT(n) = f_n(IN(n))."""
    in_sets: dict[int, frozenset] = {n.nid: frozenset() for n in cfg}
    out_sets: dict[int, frozenset] = {n.nid: frozenset() for n in cfg}
    in_sets[cfg.entry] = entry_value
    out_sets[cfg.entry] = transfer(cfg.entry, entry_value)
    worklist = deque(cfg.reverse_postorder())
    queued = set(worklist)
    while worklist:
        nid = worklist.popleft()
        queued.discard(nid)
        node = cfg.node(nid)
        if node.preds:
            new_in = frozenset().union(*(out_sets[p] for p in node.preds))
        else:
            new_in = entry_value if nid == cfg.entry else frozenset()
        in_sets[nid] = new_in
        new_out = transfer(nid, new_in)
        if new_out != out_sets[nid]:
            out_sets[nid] = new_out
            for succ in node.succs:
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)
    return DataflowResult(in_sets, out_sets)


def solve_backward(
    cfg: CFG,
    transfer: Transfer,
    exit_value: frozenset = frozenset(),
) -> DataflowResult:
    """Solve a backward may-problem: OUT(n) = U IN(s); IN(n) = f_n(OUT(n))."""
    in_sets: dict[int, frozenset] = {n.nid: frozenset() for n in cfg}
    out_sets: dict[int, frozenset] = {n.nid: frozenset() for n in cfg}
    out_sets[cfg.exit] = exit_value
    in_sets[cfg.exit] = transfer(cfg.exit, exit_value)
    order = cfg.reverse_postorder()
    worklist = deque(reversed(order))
    queued = set(worklist)
    while worklist:
        nid = worklist.popleft()
        queued.discard(nid)
        node = cfg.node(nid)
        if node.succs:
            new_out = frozenset().union(*(in_sets[s] for s in node.succs))
        else:
            new_out = exit_value if nid == cfg.exit else frozenset()
        out_sets[nid] = new_out
        new_in = transfer(nid, new_out)
        if new_in != in_sets[nid]:
            in_sets[nid] = new_in
            for pred in node.preds:
                if pred not in queued:
                    worklist.append(pred)
                    queued.add(pred)
    return DataflowResult(in_sets, out_sets)


def gen_kill_transfer(gen: dict[int, frozenset], kill: dict[int, frozenset]) -> Transfer:
    """The classic transfer ``f(x) = gen U (x - kill)``."""

    def transfer(nid: int, x: frozenset) -> frozenset:
        return gen.get(nid, frozenset()) | (x - kill.get(nid, frozenset()))

    return transfer
