"""Array reference analysis for array inputs/outputs.

When a segment's input or output is an array (the 64-entry blocks of the
MPEG2 fdct / Reference_IDCT segments), the hashing-overhead analysis needs
the array's size in words, and the transformation needs to know it can
copy the whole object.  Pointer-typed inputs are resolved through the
points-to sets to the arrays they may reference; a pointer whose target
size cannot be bounded disqualifies the segment ("unknown extent" —
the paper simply never selects such segments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..minic import astnodes as ast
from ..minic.types import ArrayType, PointerType
from .pointer import PointsTo


@dataclass(frozen=True)
class IOShape:
    """The shape of one segment input or output variable."""

    symbol: ast.Symbol
    words: int  # size in 32-bit words
    is_array: bool
    is_float: bool


def shape_of(symbol: ast.Symbol, points_to: Optional[PointsTo] = None) -> Optional[IOShape]:
    """The I/O shape of a symbol, or None if its extent is unbounded."""
    t = symbol.type
    if isinstance(t, ArrayType):
        base = t.base_elem
        return IOShape(
            symbol=symbol,
            words=t.size_words(),
            is_array=True,
            is_float=getattr(base, "name", "") == "float",
        )
    if isinstance(t, PointerType):
        if points_to is None:
            return None
        sizes = []
        is_float = False
        for target in points_to.pointees(symbol):
            if isinstance(target.type, ArrayType):
                sizes.append(target.type.size_words())
                base = target.type.base_elem
                is_float = is_float or getattr(base, "name", "") == "float"
            elif target.type.is_scalar:
                sizes.append(1)
                is_float = is_float or getattr(target.type, "name", "") == "float"
            else:
                return None
        if not sizes:
            return None
        return IOShape(symbol=symbol, words=max(sizes), is_array=True, is_float=is_float)
    if t.is_scalar:
        return IOShape(
            symbol=symbol,
            words=1,
            is_array=False,
            is_float=getattr(t, "name", "") == "float",
        )
    return None


def total_words(shapes: list[IOShape]) -> int:
    return sum(s.words for s in shapes)
