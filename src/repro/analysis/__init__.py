"""Static analyses supporting the computation-reuse scheme."""

from .arrays import IOShape, shape_of, total_words
from .coverage import BetweenExecutions, invariant_globals
from .dataflow import DataflowResult, gen_kill_transfer, solve_backward, solve_forward
from .liveness import Liveness, function_exit_live
from .modref import ModRef, analyze_modref
from .pointer import PointsTo, analyze_pointers
from .reaching import ReachingDefinitions
from .upward import segment_inputs, upward_exposed
from .usedef import UseDef, UseDefExtractor

__all__ = [
    "IOShape",
    "shape_of",
    "total_words",
    "BetweenExecutions",
    "invariant_globals",
    "DataflowResult",
    "gen_kill_transfer",
    "solve_backward",
    "solve_forward",
    "Liveness",
    "function_exit_live",
    "ModRef",
    "analyze_modref",
    "PointsTo",
    "analyze_pointers",
    "ReachingDefinitions",
    "segment_inputs",
    "upward_exposed",
    "UseDef",
    "UseDefExtractor",
]
