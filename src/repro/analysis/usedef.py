"""Symbol-level use/def extraction for statements and expressions.

For every CFG node the dataflow analyses need three sets:

* ``uses`` — symbols whose value may be read;
* ``defs`` — symbols that *must* be (completely) written ("strong" defs —
  only these kill liveness / upward exposure);
* ``weak_defs`` — symbols that *may* be (partially) written: array element
  stores, writes through pointers (via the points-to oracle), and
  assignments under conditionally-evaluated operators.

Calls use interprocedural MOD/REF summaries when provided (see
:mod:`repro.analysis.modref`); without summaries a call conservatively
reads and weakly writes every global and every pointee of its pointer
arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..minic import astnodes as ast
from .pointer import PointsTo


@dataclass
class UseDef:
    uses: set[ast.Symbol] = field(default_factory=set)
    defs: set[ast.Symbol] = field(default_factory=set)
    weak_defs: set[ast.Symbol] = field(default_factory=set)

    def all_defs(self) -> set[ast.Symbol]:
        return self.defs | self.weak_defs


class UseDefExtractor:
    """Extracts use/def sets; one instance per program analysis session."""

    def __init__(
        self,
        points_to: Optional[PointsTo] = None,
        modref=None,
        global_symbols: Optional[set[ast.Symbol]] = None,
    ) -> None:
        self.points_to = points_to
        self.modref = modref  # ModRef summaries, optional
        # Fallback call effects when no MOD/REF summaries are available:
        # every non-const global may be read and written by any call.
        self.global_symbols = global_symbols or set()

    # -- statements -----------------------------------------------------------

    def of_stmt(self, stmt: ast.Stmt) -> UseDef:
        ud = UseDef()
        if isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr, ud, weak=False)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                if decl.init is not None:
                    self._expr(decl.init, ud, weak=False)
                if decl.symbol is not None:
                    ud.defs.add(decl.symbol)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value, ud, weak=False)
        # Break/Continue: empty.
        return ud

    def of_expr(self, expr: ast.Expr) -> UseDef:
        ud = UseDef()
        self._expr(expr, ud, weak=False)
        return ud

    # -- expression walk ---------------------------------------------------------

    def _expr(self, expr: ast.Expr, ud: UseDef, weak: bool) -> None:
        """``weak``: we are under a conditionally-evaluated context, so any
        definition found is a may-def."""
        if isinstance(expr, (ast.IntLit, ast.FloatLit)):
            return
        if isinstance(expr, ast.Name):
            if expr.symbol is not None and expr.symbol.kind != "func":
                ud.uses.add(expr.symbol)
            return
        if isinstance(expr, ast.Unary):
            if expr.op == "&":
                # taking an address is not a read of the object
                self._lvalue_address(expr.operand, ud, weak)
                return
            if expr.op == "*":
                self._expr(expr.operand, ud, weak)
                self._deref_use(expr.operand, ud)
                return
            self._expr(expr.operand, ud, weak)
            return
        if isinstance(expr, ast.IncDec):
            self._expr(expr.target, ud, weak)  # read
            self._define(expr.target, ud, weak)  # write
            return
        if isinstance(expr, ast.Binary):
            self._expr(expr.lhs, ud, weak)
            self._expr(expr.rhs, ud, weak)
            return
        if isinstance(expr, ast.Logical):
            self._expr(expr.lhs, ud, weak)
            self._expr(expr.rhs, ud, weak=True)
            return
        if isinstance(expr, ast.Ternary):
            self._expr(expr.cond, ud, weak)
            self._expr(expr.then, ud, weak=True)
            self._expr(expr.els, ud, weak=True)
            return
        if isinstance(expr, ast.Assign):
            if expr.op != "=":
                self._expr(expr.target, ud, weak)  # compound reads the target
            self._expr(expr.value, ud, weak)
            self._define(expr.target, ud, weak)
            return
        if isinstance(expr, ast.Index):
            self._expr(expr.base, ud, weak)
            self._expr(expr.index, ud, weak)
            # reading an element reads the (whole, symbol-granular) array
            self._deref_use(expr.base, ud)
            return
        if isinstance(expr, ast.Call):
            for arg in expr.args:
                self._expr(arg, ud, weak)
            self._call_effects(expr, ud)
            return
        raise TypeError(f"use/def of unknown expression {type(expr).__name__}")

    # -- helpers -----------------------------------------------------------------

    def _define(self, target: ast.Expr, ud: UseDef, weak: bool) -> None:
        if isinstance(target, ast.Name):
            if target.symbol is None:
                return
            if weak:
                ud.weak_defs.add(target.symbol)
            else:
                ud.defs.add(target.symbol)
            return
        if isinstance(target, ast.Index):
            self._expr(target.base, ud, weak)
            self._expr(target.index, ud, weak)
            # an element store is always a weak (partial) def of the array
            for symbol in self._targets_of(target.base):
                ud.weak_defs.add(symbol)
            return
        if isinstance(target, ast.Unary) and target.op == "*":
            self._expr(target.operand, ud, weak)
            for symbol in self._targets_of(target.operand):
                ud.weak_defs.add(symbol)
            return

    def _lvalue_address(self, expr: ast.Expr, ud: UseDef, weak: bool) -> None:
        """&lvalue evaluates any index/base expressions but reads nothing."""
        if isinstance(expr, ast.Index):
            self._expr(expr.base, ud, weak)
            self._expr(expr.index, ud, weak)
        elif isinstance(expr, ast.Unary) and expr.op == "*":
            self._expr(expr.operand, ud, weak)

    def _deref_use(self, base: ast.Expr, ud: UseDef) -> None:
        for symbol in self._targets_of(base):
            ud.uses.add(symbol)

    def _targets_of(self, base: ast.Expr) -> set[ast.Symbol]:
        """Symbols an indexing/deref base may denote."""
        # Direct array names are the common fast case.
        root = base
        while isinstance(root, ast.Binary) and root.op in ("+", "-"):
            root = root.lhs
        if isinstance(root, ast.Name) and root.symbol is not None:
            if root.symbol.type.is_array:
                return {root.symbol}
            if self.points_to is not None:
                targets = self.points_to.deref_targets(root)
                # the pointer variable itself was read to do the deref
                return targets
        if self.points_to is not None:
            return self.points_to.deref_targets(base)
        return set()

    def _call_effects(self, call: ast.Call, ud: UseDef) -> None:
        if isinstance(call.func, ast.Name) and call.func.symbol is None:
            return  # builtins have no variable-level side effects
        if isinstance(call.func, ast.Name) and call.func.symbol.kind != "func":
            ud.uses.add(call.func.symbol)  # the function-pointer variable
        if self.modref is not None:
            targets = (
                self.points_to.call_targets(call) if self.points_to is not None else set()
            )
            if isinstance(call.func, ast.Name) and call.func.symbol is not None:
                if call.func.symbol.kind == "func":
                    targets = {call.func.symbol.name}
            for callee in targets:
                mod, ref = self.modref.summary(callee)
                ud.uses.update(ref)
                ud.weak_defs.update(mod)
            return
        # No summaries: conservative — the call may read/write any global
        # and anything reachable from pointer arguments.
        for symbol in self.global_symbols:
            if not symbol.is_const:
                ud.uses.add(symbol)
                ud.weak_defs.add(symbol)
        for arg in call.args:
            if self.points_to is not None:
                for symbol in self.points_to.deref_targets(arg):
                    ud.uses.add(symbol)
                    ud.weak_defs.add(symbol)
