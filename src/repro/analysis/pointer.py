"""Unification-based (Steensgaard-style) pointer analysis.

The paper performs a global unification-based pointer analysis (its
reference [7], Das) so that aliases introduced through call arguments and
globals are visible to the def-use and input/output analyses — e.g. the
``quan`` parameter ``table`` aliasing the global array ``power2``.

Our abstraction is symbol-granular: every variable symbol owns one
abstract cell; each cell has at most one pointee cell, and assignments
unify pointee cells (the classic almost-linear-time scheme).  Arrays are
single abstract locations (element-granular alias precision is not needed
by any client analysis).  Function symbols are locations too, which
resolves calls through function pointers for call-graph construction.

Public queries:

* :meth:`PointsTo.pointees` — the variable symbols a pointer may target;
* :meth:`PointsTo.called_functions` — the function names a function
  pointer may target;
* :meth:`PointsTo.may_alias` — whether two pointers may target the same
  location.
"""

from __future__ import annotations

from typing import Optional

from ..minic import astnodes as ast
from ..minic.types import ArrayType, PointerType


class _UnionFind:
    def __init__(self) -> None:
        self._parent: list[int] = []
        # pointee cell of each root cell (or -1)
        self._pts: list[int] = []

    def make_cell(self) -> int:
        cell = len(self._parent)
        self._parent.append(cell)
        self._pts.append(-1)
        return cell

    def find(self, cell: int) -> int:
        root = cell
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[cell] != root:
            self._parent[cell], cell = root, self._parent[cell]
        return root

    def pointee(self, cell: int) -> int:
        """The pointee cell of ``cell``, created on demand."""
        root = self.find(cell)
        if self._pts[root] == -1:
            self._pts[root] = self.make_cell()
        return self.find(self._pts[root])

    def union(self, a: int, b: int) -> None:
        """Unify two cells, recursively unifying their pointees."""
        worklist = [(a, b)]
        while worklist:
            x, y = worklist.pop()
            rx, ry = self.find(x), self.find(y)
            if rx == ry:
                continue
            px, py = self._pts[rx], self._pts[ry]
            self._parent[rx] = ry
            if px != -1 and py != -1:
                worklist.append((px, py))
            elif px != -1:
                self._pts[ry] = px

    def same(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)


class PointsTo:
    """The result of running pointer analysis over a whole program."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self._uf = _UnionFind()
        self._cell_of: dict[ast.Symbol, int] = {}
        # the cell representing "a value that points at function f"
        self._fval_cell: dict[str, int] = {}
        # the cell holding function f's return value
        self._ret_cell: dict[str, int] = {}
        self._functions = {fn.name: fn for fn in program.functions}
        self._run()

    # -- cells ----------------------------------------------------------------

    def _cell(self, symbol: ast.Symbol) -> int:
        cell = self._cell_of.get(symbol)
        if cell is None:
            cell = self._uf.make_cell()
            self._cell_of[symbol] = cell
        return cell

    def _fval(self, name: str) -> int:
        cell = self._fval_cell.get(name)
        if cell is None:
            cell = self._uf.make_cell()
            self._fval_cell[name] = cell
            fn = self._functions.get(name)
            if fn is not None and fn.symbol is not None:
                # pointee of a function value is the function's own cell
                self._uf.union(self._uf.pointee(cell), self._cell(fn.symbol))
        return cell

    def _ret(self, name: str) -> int:
        cell = self._ret_cell.get(name)
        if cell is None:
            cell = self._uf.make_cell()
            self._ret_cell[name] = cell
        return cell

    # -- constraint generation ------------------------------------------------

    def _run(self) -> None:
        # Iterate to a fixed point: indirect-call constraints depend on
        # points-to facts discovered by earlier iterations.
        for _ in range(4):
            before = len(self._uf._parent)
            snapshot = list(self._uf._parent)
            for fn in self._functions.values():
                self._visit_function(fn)
            after = list(self._uf._parent)
            if len(after) == before and after == snapshot:
                break

    def _visit_function(self, fn: ast.Function) -> None:
        for node in ast.walk(fn.body):
            if isinstance(node, ast.Assign) and node.op == "=":
                target_cell = self._lvalue_cell(node.target)
                if target_cell is not None:
                    self._assign(target_cell, node.value)
            elif isinstance(node, ast.DeclStmt):
                for decl in node.decls:
                    if decl.init is not None and decl.symbol is not None:
                        self._assign(self._cell(decl.symbol), decl.init)
            elif isinstance(node, ast.Call):
                self._visit_call(node)
            elif isinstance(node, ast.Return) and node.value is not None:
                self._assign(self._ret(fn.name), node.value)

    def _assign(self, target_cell: int, value: ast.Expr) -> None:
        value_cell = self._value_cell(value)
        if value_cell is not None:
            # x = y: unify the pointees (contents) of the two cells.
            self._uf.union(self._uf.pointee(target_cell), self._uf.pointee(value_cell))

    def _visit_call(self, call: ast.Call) -> None:
        for callee in self.call_targets(call):
            fn = self._functions.get(callee)
            if fn is None:
                continue
            for param, arg in zip(fn.params, call.args):
                if param.symbol is None:
                    continue
                if isinstance(param.symbol.type, (PointerType,)):
                    self._assign(self._cell(param.symbol), arg)

    def call_targets(self, call: ast.Call) -> set[str]:
        """The possible callee names of a call expression."""
        func = call.func
        if isinstance(func, ast.Name):
            if func.symbol is None:
                return set()  # builtin
            if func.symbol.kind == "func":
                return {func.symbol.name}
            # call through a variable: resolve via points-to
            return self.called_functions(func.symbol)
        return set()

    # -- value cells ------------------------------------------------------------

    def _value_cell(self, expr: ast.Expr) -> Optional[int]:
        """A cell whose pointee-set abstracts the value of ``expr`` (for
        pointer-valued expressions); None for non-pointer values."""
        if isinstance(expr, ast.Name):
            symbol = expr.symbol
            if symbol is None:
                return None
            if symbol.kind == "func":
                return self._fval(symbol.name)
            if isinstance(symbol.type, ArrayType):
                # array decay: a value pointing at the array's storage
                cell = self._uf.make_cell()
                self._uf.union(self._uf.pointee(cell), self._cell(symbol))
                return cell
            return self._cell(symbol)
        if isinstance(expr, ast.Unary):
            if expr.op == "&":
                inner = self._lvalue_cell(expr.operand)
                if inner is None:
                    return None
                cell = self._uf.make_cell()
                self._uf.union(self._uf.pointee(cell), inner)
                return cell
            if expr.op == "*":
                base = self._value_cell(expr.operand)
                if base is None:
                    return None
                return self._uf.pointee(base)
            return None
        if isinstance(expr, ast.Binary):
            if expr.op in ("+", "-"):
                # pointer arithmetic preserves the target
                left = self._value_cell(expr.lhs)
                if left is not None:
                    return left
                return self._value_cell(expr.rhs)
            if expr.op == ",":
                return self._value_cell(expr.rhs)
            return None
        if isinstance(expr, ast.Index):
            base = self._value_cell(expr.base)
            if base is None:
                return None
            return self._uf.pointee(base)
        if isinstance(expr, ast.Ternary):
            a = self._value_cell(expr.then)
            b = self._value_cell(expr.els)
            if a is not None and b is not None:
                self._uf.union(a, b)
            return a if a is not None else b
        if isinstance(expr, ast.Call):
            for callee in self.call_targets(expr):
                return self._ret(callee)
            return None
        if isinstance(expr, ast.Assign):
            return self._value_cell(expr.value)
        return None

    def _lvalue_cell(self, expr: ast.Expr) -> Optional[int]:
        """The cell of the storage an lvalue denotes."""
        if isinstance(expr, ast.Name):
            if expr.symbol is None or expr.symbol.kind == "func":
                return None
            return self._cell(expr.symbol)
        if isinstance(expr, ast.Index):
            base = self._value_cell(expr.base)
            if base is None:
                return None
            return self._uf.pointee(base)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            base = self._value_cell(expr.operand)
            if base is None:
                return None
            return self._uf.pointee(base)
        return None

    # -- public queries --------------------------------------------------------------

    def pointees(self, symbol: ast.Symbol) -> set[ast.Symbol]:
        """Variable symbols that ``*symbol`` may denote."""
        if symbol not in self._cell_of:
            return set()
        target = self._uf.pointee(self._cell_of[symbol])
        result = set()
        for other, cell in self._cell_of.items():
            if other.kind == "func":
                continue
            if self._uf.same(cell, target):
                result.add(other)
        return result

    def called_functions(self, symbol: ast.Symbol) -> set[str]:
        """Function names that a call through ``symbol`` may reach."""
        if symbol not in self._cell_of:
            return set()
        target = self._uf.pointee(self._cell_of[symbol])
        result = set()
        for fn in self._functions.values():
            if fn.symbol is not None and fn.symbol in self._cell_of:
                if self._uf.same(self._cell_of[fn.symbol], target):
                    result.add(fn.name)
        return result

    def may_alias(self, a: ast.Symbol, b: ast.Symbol) -> bool:
        """May pointers ``a`` and ``b`` target the same location?"""
        if a not in self._cell_of or b not in self._cell_of:
            return False
        return self._uf.same(
            self._uf.pointee(self._cell_of[a]), self._uf.pointee(self._cell_of[b])
        )

    def deref_targets(self, expr: ast.Expr) -> set[ast.Symbol]:
        """The variable symbols a pointer-valued expression may point at —
        the may-use/may-def set of ``*expr`` for the dataflow analyses."""
        cell = self._value_cell(expr)
        if cell is None:
            return set()
        target = self._uf.pointee(cell)
        return {
            symbol
            for symbol, c in self._cell_of.items()
            if symbol.kind != "func" and self._uf.same(c, target)
        }


def analyze_pointers(program: ast.Program) -> PointsTo:
    """Run the global pointer analysis."""
    return PointsTo(program)
