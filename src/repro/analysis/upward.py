"""Upward-exposed reads of a code-segment region.

"The inputs of a code segment are those variables or array elements that
have upward-exposed reads in the code segment, excluding those recognized
by the compiler as invariants at the entry of the code segment."

A use of ``v`` at region node *n* is upward exposed when some path from a
region entry to *n* contains no strong definition of ``v`` before the
use.  We solve the classic backward formulation restricted to the region's
subgraph: UE-in(n) = uses(n) ∪ (UE-out(n) − defs(n)), UE-out(n) =
∪ UE-in(s) over region successors, and the region's upward-exposed set is
the union of UE-in over its entry nodes.
"""

from __future__ import annotations

from collections import deque

from ..minic import astnodes as ast
from ..ir.cfg import CFG
from .usedef import UseDefExtractor


def upward_exposed(
    cfg: CFG,
    region: set[int],
    extractor: UseDefExtractor,
) -> frozenset:
    """The symbols whose reads are upward-exposed at the region entry."""
    uses: dict[int, frozenset] = {}
    defs: dict[int, frozenset] = {}
    for nid in region:
        node = cfg.node(nid)
        if node.ast_node is None:
            uses[nid] = defs[nid] = frozenset()
            continue
        if isinstance(node.ast_node, ast.Stmt):
            ud = extractor.of_stmt(node.ast_node)
        else:
            ud = extractor.of_expr(node.ast_node)
        uses[nid] = frozenset(ud.uses)
        defs[nid] = frozenset(ud.defs)  # weak defs do not kill exposure

    ue_in: dict[int, frozenset] = {nid: frozenset() for nid in region}
    worklist = deque(region)
    queued = set(region)
    while worklist:
        nid = worklist.popleft()
        queued.discard(nid)
        node = cfg.node(nid)
        out = frozenset()
        for succ in node.succs:
            if succ in region:
                out |= ue_in[succ]
        new_in = uses[nid] | (out - defs[nid])
        if new_in != ue_in[nid]:
            ue_in[nid] = new_in
            for pred in node.preds:
                if pred in region and pred not in queued:
                    worklist.append(pred)
                    queued.add(pred)

    exposed: set = set()
    for entry in cfg.region_entries(region):
        exposed |= ue_in[entry]
    return frozenset(exposed)


def segment_inputs(
    cfg: CFG,
    region: set[int],
    extractor: UseDefExtractor,
    invariants: frozenset = frozenset(),
) -> frozenset:
    """The paper's input set: upward-exposed reads minus entry invariants
    (an invariant never needs to be part of the hash key)."""
    return upward_exposed(cfg, region, extractor) - invariants
