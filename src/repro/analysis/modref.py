"""Interprocedural MOD/REF summaries.

For every function we compute the sets of symbols it may modify (MOD) and
may read (REF), *as visible to its callers*: globals, and pointees of
pointer parameters (which are the caller's storage).  A function's own
locals and parameters are filtered out — their lifetime ends at return.

Summaries are computed to a fixed point over the call graph (recursion is
handled by plain iteration), and they feed the call-site effects in
:mod:`repro.analysis.usedef`, which is what makes def-use chains and
liveness *global* in the paper's sense: "there may exist a def-use chain
whose definition and use are in different procedures".
"""

from __future__ import annotations

from ..minic import astnodes as ast
from .pointer import PointsTo
from .usedef import UseDefExtractor


class _NoEffects:
    """A ModRef stub that reports empty call effects (used while gathering
    each function's *direct* effects)."""

    def summary(self, name: str):
        return frozenset(), frozenset()


class ModRef:
    def __init__(self, program: ast.Program, points_to: PointsTo) -> None:
        self.program = program
        self.points_to = points_to
        self._mod: dict[str, frozenset] = {}
        self._ref: dict[str, frozenset] = {}
        self._compute()

    def summary(self, name: str) -> tuple[frozenset, frozenset]:
        """Returns (MOD, REF) for a function name; empty for unknown."""
        return self._mod.get(name, frozenset()), self._ref.get(name, frozenset())

    def mod(self, name: str) -> frozenset:
        return self._mod.get(name, frozenset())

    def ref(self, name: str) -> frozenset:
        return self._ref.get(name, frozenset())

    def modified_anywhere(self) -> frozenset:
        """Symbols modified by any function — the complement (over globals)
        is the refined invariant-globals set used by code-coverage
        analysis and hash-key pruning."""
        result: set = set()
        for mod in self._mod.values():
            result |= mod
        return frozenset(result)

    # -- computation -------------------------------------------------------

    def _compute(self) -> None:
        extractor = UseDefExtractor(self.points_to, modref=_NoEffects())
        direct_mod: dict[str, set] = {}
        direct_ref: dict[str, set] = {}
        call_sites: dict[str, list] = {}
        for fn in self.program.functions:
            mod: set = set()
            ref: set = set()
            calls: list = []
            for node in ast.walk(fn.body):
                if isinstance(node, ast.Call):
                    calls.append(node)
            for node in ast.walk(fn.body):
                if isinstance(node, ast.Stmt):
                    ud = extractor.of_stmt(node) if not isinstance(node, ast.Block) else None
                    if ud is None:
                        continue
                    mod |= ud.defs | ud.weak_defs
                    ref |= ud.uses
                elif isinstance(node, (ast.If, ast.While, ast.DoWhile, ast.For)):
                    pass
            # Statements nested in control flow are themselves walked above
            # (walk is recursive), but conditions are expressions: add them.
            for node in ast.walk(fn.body):
                if isinstance(node, (ast.If, ast.While, ast.DoWhile)):
                    ud = extractor.of_expr(node.cond)
                    mod |= ud.defs | ud.weak_defs
                    ref |= ud.uses
                elif isinstance(node, ast.For):
                    for part in (node.cond, node.step):
                        if part is not None:
                            ud = extractor.of_expr(part)
                            mod |= ud.defs | ud.weak_defs
                            ref |= ud.uses
            direct_mod[fn.name] = self._externalize(fn, mod)
            direct_ref[fn.name] = self._externalize(fn, ref)
            call_sites[fn.name] = calls

        # Fixed point over the call graph.
        self._mod = {name: frozenset(s) for name, s in direct_mod.items()}
        self._ref = {name: frozenset(s) for name, s in direct_ref.items()}
        changed = True
        while changed:
            changed = False
            for fn in self.program.functions:
                mod = set(self._mod[fn.name])
                ref = set(self._ref[fn.name])
                for call in call_sites[fn.name]:
                    for callee in self.points_to.call_targets(call):
                        cm, cr = self.summary(callee)
                        mod |= self._externalize(fn, cm)
                        ref |= self._externalize(fn, cr)
                if mod != self._mod[fn.name] or ref != self._ref[fn.name]:
                    self._mod[fn.name] = frozenset(mod)
                    self._ref[fn.name] = frozenset(ref)
                    changed = True

    @staticmethod
    def _externalize(fn: ast.Function, symbols: set) -> set:
        """Drop symbols that are private to ``fn`` (its locals/params)."""
        return {
            s
            for s in symbols
            if not (s.kind in ("local", "param") and s.func_name == fn.name)
        }


def analyze_modref(program: ast.Program, points_to: PointsTo) -> ModRef:
    return ModRef(program, points_to)
