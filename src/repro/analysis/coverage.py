"""Code-coverage (invariance) analysis — section 2.4 of the paper.

"To identify whether a variable is invariant in the execution of the code
segment, our scheme performs a code coverage analysis to find all basic
blocks which are in the execution paths from the first execution instance
to the last execution instance of the code segment.  If the variable
remains unchanged in all these basic blocks, then it is invariant for the
code segment."

Two granularities are provided:

* :func:`invariant_globals` — program-wide: globals no function ever
  modifies (pointer-aware via MOD/REF).  This refines the syntactic
  constancy from semantic analysis: an array passed to a function that
  only *reads* it (the ``power2``/``table`` case in ``quan``) is
  invariant here even though it escapes syntactically.
* :class:`BetweenExecutions` — intra-function: the CFG nodes that can
  execute between two dynamic instances of a segment (paths from a region
  exit back to a region entry), and the symbols unchanged on all of them.
"""

from __future__ import annotations

from collections import deque

from ..minic import astnodes as ast
from ..ir.cfg import CFG
from .modref import ModRef
from .usedef import UseDefExtractor


def invariant_globals(program: ast.Program, modref: ModRef) -> frozenset:
    """Global symbols never modified by any function (after initialization)."""
    modified = modref.modified_anywhere()
    result = set()
    for g in program.globals:
        symbol = g.decl.symbol
        if symbol is not None and symbol not in modified:
            result.add(symbol)
    return frozenset(result)


class BetweenExecutions:
    """The set of CFG nodes on execution paths between two instances of a
    region, and invariance queries over it."""

    def __init__(self, cfg: CFG, region: set[int], extractor: UseDefExtractor) -> None:
        self.cfg = cfg
        self.region = region
        self.extractor = extractor
        self.between = self._between_nodes()

    def _between_nodes(self) -> set[int]:
        entries = self.cfg.region_entries(self.region)
        exits = self.cfg.region_exit_targets(self.region)
        # forward reachability from exit targets, stopping at region entries
        forward: set[int] = set()
        work = deque(exits)
        while work:
            nid = work.popleft()
            if nid in forward:
                continue
            forward.add(nid)
            if nid in entries:
                continue  # re-entering the region ends the "between" path
            for succ in self.cfg.node(nid).succs:
                if succ not in self.region:
                    work.append(succ)
                else:
                    forward.add(succ)  # boundary marker; filtered below
        # backward reachability from region entries
        backward: set[int] = set()
        work = deque(entries)
        while work:
            nid = work.popleft()
            for pred in self.cfg.node(nid).preds:
                if pred in backward or pred in self.region:
                    continue
                backward.add(pred)
                work.append(pred)
        return (forward & backward) - self.region

    def modifies(self, symbol: ast.Symbol) -> bool:
        """May any between-executions node modify ``symbol``?"""
        for nid in self.between:
            node = self.cfg.node(nid)
            if node.ast_node is None:
                continue
            if isinstance(node.ast_node, ast.Stmt):
                ud = self.extractor.of_stmt(node.ast_node)
            else:
                ud = self.extractor.of_expr(node.ast_node)
            if symbol in ud.defs or symbol in ud.weak_defs:
                return True
        return False

    def invariant_symbols(self, candidates: frozenset) -> frozenset:
        """The subset of ``candidates`` invariant between executions."""
        return frozenset(s for s in candidates if not self.modifies(s))
