"""Reaching definitions (forward may-problem).

Definitions are ``(node_id, symbol)`` pairs; parameters and globals get
pseudo-definitions at the CFG entry.  Weak definitions (array element
stores, stores through pointers, call side effects) generate but do not
kill.  Def-use chains (:mod:`repro.ir.defuse`) are assembled from this
result.
"""

from __future__ import annotations

from ..minic import astnodes as ast
from ..ir.cfg import CFG
from .dataflow import DataflowResult, solve_forward
from .usedef import UseDefExtractor

Definition = tuple[int, ast.Symbol]  # (defining node id, symbol); entry defs use cfg.entry


class ReachingDefinitions:
    def __init__(
        self,
        cfg: CFG,
        extractor: UseDefExtractor,
        entry_symbols: frozenset = frozenset(),
    ) -> None:
        self.cfg = cfg
        self.extractor = extractor
        self._ud = {}
        gen: dict[int, frozenset] = {}
        kill_syms: dict[int, frozenset] = {}
        all_defs_by_symbol: dict[ast.Symbol, set[Definition]] = {}

        entry_defs = frozenset((cfg.entry, s) for s in entry_symbols)
        for s in entry_symbols:
            all_defs_by_symbol.setdefault(s, set()).add((cfg.entry, s))

        for node in cfg:
            if node.ast_node is None:
                continue
            if isinstance(node.ast_node, ast.Stmt):
                ud = extractor.of_stmt(node.ast_node)
            else:
                ud = extractor.of_expr(node.ast_node)
            self._ud[node.nid] = ud
            node_defs = frozenset((node.nid, s) for s in ud.defs | ud.weak_defs)
            gen[node.nid] = node_defs
            kill_syms[node.nid] = frozenset(ud.defs)
            for _, s in node_defs:
                all_defs_by_symbol.setdefault(s, set()).add((node.nid, s))

        self._defs_by_symbol = all_defs_by_symbol

        def transfer(nid: int, inp: frozenset) -> frozenset:
            killed = kill_syms.get(nid, frozenset())
            if killed:
                inp = frozenset(d for d in inp if d[1] not in killed)
            return gen.get(nid, frozenset()) | inp

        self.result: DataflowResult = solve_forward(cfg, transfer, entry_value=entry_defs)

    def reaching_in(self, nid: int) -> frozenset:
        return self.result.in_sets[nid]

    def defs_reaching_use(self, nid: int, symbol: ast.Symbol) -> frozenset:
        """Definitions of ``symbol`` that may reach a use at node ``nid``."""
        return frozenset(d for d in self.result.in_sets[nid] if d[1] is symbol)

    def use_def(self, nid: int):
        return self._ud.get(nid)

    def definitions_of(self, symbol: ast.Symbol) -> frozenset:
        return frozenset(self._defs_by_symbol.get(symbol, ()))
