"""Metrics registry overhead benchmark.

Two costs, written to ``BENCH_metrics.json`` at the repo root:

* **per-op** — nanoseconds for one labeled counter increment through a
  pre-resolved child (the hot path the metered probe wrapper pays) and
  one ``labels()`` lookup + increment (the cold path);
* **per-workload** — wall-clock cost of running a workload with a
  :class:`~repro.obs.metrics.MetricsRegistry` installed versus without,
  at O0 and O3 with reuse tables live.

The no-observer-effect invariant rides along: a metered run must report
bit-identical simulated cycles, because the metered closures exist only
when a registry is installed and the registry observes the machine, it
never perturbs it.

Run directly (``python benchmarks/bench_metrics.py``) or via pytest
(``pytest benchmarks/bench_metrics.py``).
"""

from __future__ import annotations

import json
import pathlib
import time

from repro import api
from repro.experiments.adaptive import workload_config
from repro.obs.metrics import MetricsRegistry
from repro.workloads.registry import get_workload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_metrics.json"

BENCH_WORKLOADS = ("UNEPIC", "GNUGO")
OPT_LEVELS = ("O0", "O3")
OP_ITERATIONS = 200_000


def _bench_ops() -> dict:
    registry = MetricsRegistry()
    family = registry.counter("bench_ops", "Benchmark counter.")
    child = family.labels(segment="1")

    start = time.perf_counter()
    for _ in range(OP_ITERATIONS):
        child.inc()
    hot_ns = (time.perf_counter() - start) / OP_ITERATIONS * 1e9

    start = time.perf_counter()
    for _ in range(OP_ITERATIONS):
        family.labels(segment="1").inc()
    cold_ns = (time.perf_counter() - start) / OP_ITERATIONS * 1e9

    assert child.value == 2 * OP_ITERATIONS
    return {
        "child_inc_ns": round(hot_ns, 1),
        "labels_lookup_inc_ns": round(cold_ns, 1),
    }


def _measure_one(name: str, opt_level: str, metered: bool) -> tuple[int, float]:
    """One measured run; returns (simulated cycles, wall seconds)."""
    workload = get_workload(name)
    program = api.compile(
        workload.source,
        api.CompileOptions(opt=opt_level, config=workload_config(workload)),
        metrics=metered,
    )
    inputs = workload.default_inputs()
    program.profile(inputs)
    start = time.perf_counter()
    result = program.run(inputs)
    elapsed = time.perf_counter() - start
    return result.metrics.cycles, elapsed


def run_benchmark() -> dict:
    per_workload: dict[str, dict] = {}
    worst = 0.0
    for name in BENCH_WORKLOADS:
        entry: dict[str, float] = {}
        for opt_level in OPT_LEVELS:
            plain_cycles, plain_s = _measure_one(name, opt_level, metered=False)
            metered_cycles, metered_s = _measure_one(name, opt_level, metered=True)
            assert metered_cycles == plain_cycles, (
                "the metrics registry perturbed the simulated machine"
            )
            overhead_pct = (metered_s / plain_s - 1.0) * 100.0
            worst = max(worst, overhead_pct)
            entry[f"{opt_level}_plain_seconds"] = round(plain_s, 4)
            entry[f"{opt_level}_metered_seconds"] = round(metered_s, 4)
            entry[f"{opt_level}_overhead_pct"] = round(overhead_pct, 1)
        per_workload[name] = entry
    return {
        "workloads": list(BENCH_WORKLOADS),
        "opt_levels": list(OPT_LEVELS),
        "ops": _bench_ops(),
        "per_workload": per_workload,
        "max_overhead_pct": round(worst, 1),
    }


def write_result(result: dict, path: pathlib.Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(result, indent=1, sort_keys=True) + "\n")


def test_bench_metrics():
    result = run_benchmark()
    write_result(result)
    # metering slows wall clock but must never change simulated cycles
    # (asserted per-run above); the wall overhead itself is unbounded on
    # shared CI machines, so only report it
    assert result["ops"]["child_inc_ns"] > 0


if __name__ == "__main__":
    bench = run_benchmark()
    write_result(bench)
    print(json.dumps(bench, indent=1, sort_keys=True))
