"""Regenerates Table 3: factors which affect the optimization decision.

Columns: computation granularity C (us per execution), hashing overhead
O (us), distinct input patterns, reuse rate, hash table size — one row
per primary program, measured on our simulated SA-1110.

Shape assertions encode the paper's qualitative claims; absolute values
are recorded side by side with the paper's in the rendered output.
"""

from conftest import save_and_print

from repro.experiments import render_table3, table3
from repro.workloads import PRIMARY_WORKLOADS


def test_table3(benchmark, runner, results_dir):
    rows = benchmark.pedantic(
        lambda: table3(runner, PRIMARY_WORKLOADS), rounds=1, iterations=1
    )
    save_and_print(results_dir, "table3", render_table3(rows))

    by_name = {r.program: r for r in rows}

    # O < C for every transformed headline segment (they passed formula 3)
    for row in rows:
        assert row.overhead_us < row.computation_us, row.program
        assert 0.0 < row.reuse_rate <= 1.0
        assert row.table_bytes > 0

    # MPEG2 granularity dwarfs the scalar workloads (software floats)
    assert by_name["MPEG2_decode"].computation_us > 50 * by_name["G721_encode"].computation_us
    assert by_name["MPEG2_encode"].computation_us > 50 * by_name["G721_encode"].computation_us

    # MPEG2_encode has by far the lowest reuse rate
    assert by_name["MPEG2_encode"].reuse_rate == min(r.reuse_rate for r in rows)
    assert by_name["MPEG2_encode"].reuse_rate < 0.2

    # RASTA: tiny distinct-pattern count, near-total reuse, smallest table
    assert by_name["RASTA"].distinct_inputs <= 40
    assert by_name["RASTA"].reuse_rate > 0.98
    assert by_name["RASTA"].table_bytes == min(r.table_bytes for r in rows)

    # G721: very high reuse of a one-word key
    for name in ("G721_encode", "G721_decode"):
        assert by_name[name].reuse_rate > 0.85

    # UNEPIC: mid reuse rate (~0.65 in the paper)
    assert 0.45 < by_name["UNEPIC"].reuse_rate < 0.8


def test_collisions_concentrated_in_mpeg2(benchmark, runner, results_dir):
    """§3.1: '(In our experiments, only the program MPEG2 generates hash
    collisions.)' — the 64-word block keys go through Jenkins + modulo and
    occasionally collide; the single-word keys of the other programs
    index (nearly) injectively."""

    def collision_rates():
        rates = {}
        for workload in PRIMARY_WORKLOADS:
            run = runner.compare(workload, "O0")
            probes = sum(s.probes for s in run.table_stats.values())
            collisions = sum(s.collisions for s in run.table_stats.values())
            rates[workload.name] = collisions / max(1, probes)
        return rates

    rates = benchmark.pedantic(collision_rates, rounds=1, iterations=1)
    text = "Hash collision rates (per probe)\n" + "\n".join(
        f"  {name:14} {rate * 100:.2f}%" for name, rate in rates.items()
    )
    save_and_print(results_dir, "collision_rates", text)

    mpeg2 = max(rates["MPEG2_encode"], rates["MPEG2_decode"])
    others = {n: r for n, r in rates.items() if not n.startswith("MPEG2")}
    assert mpeg2 > 0.02
    for name, rate in others.items():
        assert rate < mpeg2, name
    # the scalar-key programs are collision-free outright
    for name in ("G721_encode", "G721_decode", "RASTA", "UNEPIC"):
        assert rates[name] < 0.005, name
