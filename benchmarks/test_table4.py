"""Regenerates Table 4: number of code segments analyzed, profiled, and
transformed per program."""

from conftest import save_and_print

from repro.experiments import render_table4, table4
from repro.workloads import PRIMARY_WORKLOADS


def test_table4(benchmark, runner, results_dir):
    rows = benchmark.pedantic(
        lambda: table4(runner, PRIMARY_WORKLOADS), rounds=1, iterations=1
    )
    save_and_print(results_dir, "table4", render_table4(rows))

    by_name = {r.program: r for r in rows}

    # the funnel narrows monotonically, every program transforms >= 1
    for row in rows:
        assert row.analyzed >= row.profiled >= row.transformed >= 1, row.program

    # GNU Go transforms its eight influence segments (the paper's 8)
    assert by_name["GNUGO"].transformed == 8

    # the single-kernel programs transform exactly one segment
    for name in ("MPEG2_encode", "MPEG2_decode", "RASTA", "UNEPIC"):
        assert by_name[name].transformed == 1, name

    # the paper's key functions are the ones that got transformed
    assert "quan" in by_name["G721_encode"].functions
    assert "fdct" in by_name["MPEG2_encode"].functions
    assert "idct" in by_name["MPEG2_decode"].functions
    assert "fr4tr" in by_name["RASTA"].functions
    assert "collapse_pyr" in by_name["UNEPIC"].functions
    assert "accumulate_influence" in by_name["GNUGO"].functions
