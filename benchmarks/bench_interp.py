"""Interpreter throughput benchmark: closures (fused/unfused) vs the VM.

Measures raw interpreter speed (dynamic mini-C operations per second and
wall-clock seconds) over seven workloads at O0 and O3, in three
configurations *in the same run* — the closure backend with block-fused
cost accounting off and on, and the register-bytecode VM backend
(``Machine(backend="vm")``) — and writes ``BENCH_interp.json`` at the
repo root so the perf trajectory is tracked from PR to PR:

    {"ops_per_sec": <fused>, "suite_seconds": <fused>, "fused": true,
     "unfused_ops_per_sec": ..., "unfused_suite_seconds": ...,
     "vm_ops_per_sec": ..., "vm_suite_seconds": ...,
     "speedup": ..., "vm_speedup_vs_fused": ...,
     "per_workload": {...},
     "tracer": {"disabled_ns_per_span": ..., "enabled_ns_per_span": ...},
     "event_log": {"disabled_ns_per_site": ..., "enabled_ns_per_emit": ...},
     "source_map": {"compile_seconds_off": ..., "compile_seconds_on": ...,
                    "compile_overhead_pct": ..., "run_seconds_off": ...,
                    "run_seconds_on": ..., "run_overhead_pct": ...}}

All three configurations execute the identical dynamic op stream (the
run asserts it), so the throughput ratios are pure execution-engine
comparisons.  The ``tracer`` section is the observability overhead
floor: what one ``tracer.span(...)`` costs with tracing off (the price
every untraced run pays per instrumentation point) and with tracing on.

Run directly (``python benchmarks/bench_interp.py``) or via pytest
(``pytest benchmarks/bench_interp.py``).
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.minic.parser import parse_program
from repro.minic.sema import analyze
from repro.obs import Tracer
from repro.opt.pipeline import optimize
from repro.runtime.compiler import compile_program
from repro.runtime.machine import Machine
from repro.workloads.registry import get_workload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_interp.json"

BENCH_WORKLOADS = (
    "G721_encode",
    "G721_decode",
    "MPEG2_encode",
    "MPEG2_decode",
    "RASTA",
    "UNEPIC",
    "GNUGO",
)
OPT_LEVELS = ("O0", "O3")
# (column label, Machine kwargs); ops must agree across all three.  The
# backends are pinned so the comparison survives a REPRO_BACKEND=vm run.
CONFIGS = (
    ("unfused", {"fuse": False, "backend": "closures"}),
    ("fused", {"fuse": True, "backend": "closures"}),
    ("vm", {"fuse": True, "backend": "vm"}),
)
TRACER_SPANS = 50_000
LOG_EMITS = 50_000
SRCMAP_WORKLOADS = ("UNEPIC", "G721_encode")
SRCMAP_REPEATS = 3


def _measure_one(workload, opt_level: str, **machine_kwargs) -> tuple[int, float]:
    """One measured execution; returns (dynamic ops, wall seconds)."""
    program = analyze(parse_program(workload.source))
    optimize(program, opt_level)
    machine = Machine(opt_level, **machine_kwargs)
    machine.set_inputs(workload.default_inputs())
    compiled = compile_program(program, machine)
    start = time.perf_counter()
    compiled.run("main")
    elapsed = time.perf_counter() - start
    return sum(machine.counters), elapsed


def _ns_per_span(tracer: Tracer, n: int) -> float:
    start = time.perf_counter()
    for _ in range(n):
        with tracer.span("bench", category="bench"):
            pass
    return (time.perf_counter() - start) / n * 1e9


def run_tracer_benchmark() -> dict:
    """Cost of one span, tracing off vs on.

    The disabled path is the one every untraced run pays at each
    instrumentation point (one ``if``, then the shared null context
    manager), so it is the number that keeps observability honest.
    """
    disabled = Tracer(enabled=False)
    enabled = Tracer(enabled=True)
    _ns_per_span(disabled, 1000)  # warm both paths off the books
    _ns_per_span(enabled, 1000)
    enabled.clear()
    disabled_ns = _ns_per_span(disabled, TRACER_SPANS)
    enabled_ns = _ns_per_span(enabled, TRACER_SPANS)
    enabled.clear()
    return {
        "spans_measured": TRACER_SPANS,
        "disabled_ns_per_span": round(disabled_ns, 1),
        "enabled_ns_per_span": round(enabled_ns, 1),
    }


def run_event_log_benchmark() -> dict:
    """Cost of one structured-log site, logging off vs on.

    Emitters guard with ``log = get_event_log(); if log is not None``,
    so the disabled column is the per-site price every un-observed run
    pays (one function call returning None and one ``is not None``).
    The enabled column is a real :meth:`EventLog.emit` — ring append,
    token-bucket admission, condition notify — with the rate limiter
    configured off so suppression doesn't flatter the number.
    """
    from repro.obs.log import EventLog, get_event_log

    def _guard_ns(n: int) -> float:
        start = time.perf_counter()
        for _ in range(n):
            log = get_event_log()
            if log is not None:  # pragma: no cover - off in this bench
                log.emit("bench")
        return (time.perf_counter() - start) / n * 1e9

    def _emit_ns(log: EventLog, n: int) -> float:
        start = time.perf_counter()
        for i in range(n):
            log.emit("bench", level="debug", value=i)
        return (time.perf_counter() - start) / n * 1e9

    assert get_event_log() is None, "benchmark expects logging off by default"
    enabled = EventLog(capacity=1024, rate_limit_per_sec=0.0)
    _guard_ns(1000)  # warm both paths off the books
    _emit_ns(enabled, 1000)
    disabled_ns = _guard_ns(LOG_EMITS)
    enabled_ns = _emit_ns(enabled, LOG_EMITS)
    return {
        "emits_measured": LOG_EMITS,
        "disabled_ns_per_site": round(disabled_ns, 1),
        "enabled_ns_per_emit": round(enabled_ns, 1),
    }


def run_srcmap_benchmark() -> dict:
    """Compile and run cost of :class:`SourceMap` recording, off vs on.

    The source map is the pure side table behind ``repro annotate`` and
    ``repro disasm``: the VM compiler records ``(pc, line)`` and reuse
    sites while emitting, and the emitted bytecode is proven identical
    either way — so the *run* columns should be indistinguishable and
    only compilation pays a (small) recording tax.  Best-of-N wall
    clock, summed over the measured workloads at O0.
    """
    from repro.runtime.srcmap import SourceMap

    compile_s = {"off": 0.0, "on": 0.0}
    run_s = {"off": 0.0, "on": 0.0}
    for name in SRCMAP_WORKLOADS:
        workload = get_workload(name)
        for mode in ("off", "on"):
            best_compile = best_run = float("inf")
            for _ in range(SRCMAP_REPEATS):
                program = analyze(parse_program(workload.source))
                optimize(program, "O0")
                machine = Machine("O0", backend="vm")
                if mode == "on":
                    machine.source_map = SourceMap()
                machine.set_inputs(workload.default_inputs())
                t0 = time.perf_counter()
                compiled = compile_program(program, machine)
                t1 = time.perf_counter()
                compiled.run("main")
                t2 = time.perf_counter()
                best_compile = min(best_compile, t1 - t0)
                best_run = min(best_run, t2 - t1)
            compile_s[mode] += best_compile
            run_s[mode] += best_run

    def _pct(off: float, on: float) -> float:
        return round((on - off) / off * 100, 1) if off else 0.0

    return {
        "workloads": list(SRCMAP_WORKLOADS),
        "repeats": SRCMAP_REPEATS,
        "compile_seconds_off": round(compile_s["off"], 4),
        "compile_seconds_on": round(compile_s["on"], 4),
        "compile_overhead_pct": _pct(compile_s["off"], compile_s["on"]),
        "run_seconds_off": round(run_s["off"], 4),
        "run_seconds_on": round(run_s["on"], 4),
        "run_overhead_pct": _pct(run_s["off"], run_s["on"]),
    }


def run_benchmark() -> dict:
    per_workload: dict[str, dict] = {}
    totals = {label: [0, 0.0] for label, _ in CONFIGS}  # label -> [ops, seconds]
    for name in BENCH_WORKLOADS:
        workload = get_workload(name)
        entry: dict[str, float] = {}
        for opt_level in OPT_LEVELS:
            ops_seen: dict[str, int] = {}
            for label, kwargs in CONFIGS:
                ops, seconds = _measure_one(workload, opt_level, **kwargs)
                totals[label][0] += ops
                totals[label][1] += seconds
                entry[f"{opt_level}_{label}_ops_per_sec"] = round(ops / seconds)
                ops_seen[label] = ops
            assert len(set(ops_seen.values())) == 1, (
                f"dynamic op count diverged for {name}@{opt_level}: {ops_seen}"
            )
        per_workload[name] = entry
    unfused_ops, unfused_seconds = totals["unfused"]
    fused_ops, fused_seconds = totals["fused"]
    vm_ops, vm_seconds = totals["vm"]
    return {
        "fused": True,
        "ops_per_sec": round(fused_ops / fused_seconds),
        "suite_seconds": round(fused_seconds, 3),
        "unfused_ops_per_sec": round(unfused_ops / unfused_seconds),
        "unfused_suite_seconds": round(unfused_seconds, 3),
        "vm_ops_per_sec": round(vm_ops / vm_seconds),
        "vm_suite_seconds": round(vm_seconds, 3),
        "speedup": round(unfused_seconds / fused_seconds, 2),
        "vm_speedup_vs_fused": round(fused_seconds / vm_seconds, 2),
        "workloads": list(BENCH_WORKLOADS),
        "opt_levels": list(OPT_LEVELS),
        "per_workload": per_workload,
        "tracer": run_tracer_benchmark(),
        "event_log": run_event_log_benchmark(),
        "source_map": run_srcmap_benchmark(),
    }


def write_result(result: dict, path: pathlib.Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(result, indent=1, sort_keys=True) + "\n")


def test_bench_interp():
    result = run_benchmark()
    write_result(result)
    assert result["ops_per_sec"] >= 2 * result["unfused_ops_per_sec"], result
    assert result["vm_ops_per_sec"] >= 2 * result["ops_per_sec"], result


def test_bench_srcmap_overhead():
    result = run_srcmap_benchmark()
    # recording is compile-time only; both columns must be populated and
    # the recording tax stays within the same order of magnitude
    assert result["compile_seconds_on"] > 0 and result["run_seconds_on"] > 0
    assert result["compile_overhead_pct"] < 100, result


def test_bench_event_log_overhead():
    result = run_event_log_benchmark()
    assert result["disabled_ns_per_site"] < result["enabled_ns_per_emit"], result
    # a disabled site is one process-local read and one None check —
    # generous bound for noisy CI machines
    assert result["disabled_ns_per_site"] < 1_000, result


def test_bench_tracer_overhead():
    result = run_tracer_benchmark()
    assert result["disabled_ns_per_span"] < result["enabled_ns_per_span"], result
    # a disabled span is one attribute load, one `if`, and the shared
    # null context manager — generous bound for noisy CI machines
    assert result["disabled_ns_per_span"] < 2_000, result


if __name__ == "__main__":
    bench = run_benchmark()
    write_result(bench)
    print(json.dumps(bench, indent=1, sort_keys=True))
