"""Interpreter throughput benchmark: g721 + gnugo, fused vs unfused.

Measures raw interpreter speed (dynamic mini-C operations per second and
wall-clock seconds) over the G.721 encode/decode and GNU Go workloads at
O0 and O3, with block-fused cost accounting on and off *in the same
run*, and writes ``BENCH_interp.json`` at the repo root so the perf
trajectory is tracked from PR to PR:

    {"ops_per_sec": <fused>, "suite_seconds": <fused>, "fused": true,
     "unfused_ops_per_sec": ..., "unfused_suite_seconds": ...,
     "speedup": ..., "per_workload": {...},
     "tracer": {"disabled_ns_per_span": ..., "enabled_ns_per_span": ...}}

The ``tracer`` section is the observability overhead floor: what one
``tracer.span(...)`` costs with tracing off (the price every untraced
run pays per instrumentation point) and with tracing on.

Run directly (``python benchmarks/bench_interp.py``) or via pytest
(``pytest benchmarks/bench_interp.py``).
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.minic.parser import parse_program
from repro.minic.sema import analyze
from repro.obs import Tracer
from repro.opt.pipeline import optimize
from repro.runtime.compiler import compile_program
from repro.runtime.machine import Machine
from repro.workloads.registry import get_workload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_interp.json"

BENCH_WORKLOADS = ("G721_encode", "G721_decode", "GNUGO")
OPT_LEVELS = ("O0", "O3")
TRACER_SPANS = 50_000


def _measure_one(workload, opt_level: str, fused: bool) -> tuple[int, float]:
    """One measured execution; returns (dynamic ops, wall seconds)."""
    program = analyze(parse_program(workload.source))
    optimize(program, opt_level)
    machine = Machine(opt_level, fuse=fused)
    machine.set_inputs(workload.default_inputs())
    compiled = compile_program(program, machine)
    start = time.perf_counter()
    compiled.run("main")
    elapsed = time.perf_counter() - start
    return sum(machine.counters), elapsed


def _ns_per_span(tracer: Tracer, n: int) -> float:
    start = time.perf_counter()
    for _ in range(n):
        with tracer.span("bench", category="bench"):
            pass
    return (time.perf_counter() - start) / n * 1e9


def run_tracer_benchmark() -> dict:
    """Cost of one span, tracing off vs on.

    The disabled path is the one every untraced run pays at each
    instrumentation point (one ``if``, then the shared null context
    manager), so it is the number that keeps observability honest.
    """
    disabled = Tracer(enabled=False)
    enabled = Tracer(enabled=True)
    _ns_per_span(disabled, 1000)  # warm both paths off the books
    _ns_per_span(enabled, 1000)
    enabled.clear()
    disabled_ns = _ns_per_span(disabled, TRACER_SPANS)
    enabled_ns = _ns_per_span(enabled, TRACER_SPANS)
    enabled.clear()
    return {
        "spans_measured": TRACER_SPANS,
        "disabled_ns_per_span": round(disabled_ns, 1),
        "enabled_ns_per_span": round(enabled_ns, 1),
    }


def run_benchmark() -> dict:
    per_workload: dict[str, dict] = {}
    totals = {True: [0, 0.0], False: [0, 0.0]}  # fused -> [ops, seconds]
    for name in BENCH_WORKLOADS:
        workload = get_workload(name)
        entry: dict[str, float] = {}
        for opt_level in OPT_LEVELS:
            for fused in (False, True):
                ops, seconds = _measure_one(workload, opt_level, fused)
                totals[fused][0] += ops
                totals[fused][1] += seconds
                label = "fused" if fused else "unfused"
                entry[f"{opt_level}_{label}_ops_per_sec"] = round(ops / seconds)
        per_workload[name] = entry
    fused_ops, fused_seconds = totals[True]
    unfused_ops, unfused_seconds = totals[False]
    assert fused_ops == unfused_ops, "fusion changed the dynamic op count"
    return {
        "fused": True,
        "ops_per_sec": round(fused_ops / fused_seconds),
        "suite_seconds": round(fused_seconds, 3),
        "unfused_ops_per_sec": round(unfused_ops / unfused_seconds),
        "unfused_suite_seconds": round(unfused_seconds, 3),
        "speedup": round(unfused_seconds / fused_seconds, 2),
        "workloads": list(BENCH_WORKLOADS),
        "opt_levels": list(OPT_LEVELS),
        "per_workload": per_workload,
        "tracer": run_tracer_benchmark(),
    }


def write_result(result: dict, path: pathlib.Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(result, indent=1, sort_keys=True) + "\n")


def test_bench_interp():
    result = run_benchmark()
    write_result(result)
    assert result["ops_per_sec"] >= 2 * result["unfused_ops_per_sec"], result


def test_bench_tracer_overhead():
    result = run_tracer_benchmark()
    assert result["disabled_ns_per_span"] < result["enabled_ns_per_span"], result
    # a disabled span is one attribute load, one `if`, and the shared
    # null context manager — generous bound for noisy CI machines
    assert result["disabled_ns_per_span"] < 2_000, result


if __name__ == "__main__":
    bench = run_benchmark()
    write_result(bench)
    print(json.dumps(bench, indent=1, sort_keys=True))
