"""Interpreter throughput benchmark: g721 + gnugo, fused vs unfused.

Measures raw interpreter speed (dynamic mini-C operations per second and
wall-clock seconds) over the G.721 encode/decode and GNU Go workloads at
O0 and O3, with block-fused cost accounting on and off *in the same
run*, and writes ``BENCH_interp.json`` at the repo root so the perf
trajectory is tracked from PR to PR:

    {"ops_per_sec": <fused>, "suite_seconds": <fused>, "fused": true,
     "unfused_ops_per_sec": ..., "unfused_suite_seconds": ...,
     "speedup": ..., "per_workload": {...}}

Run directly (``python benchmarks/bench_interp.py``) or via pytest
(``pytest benchmarks/bench_interp.py``).
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.minic.parser import parse_program
from repro.minic.sema import analyze
from repro.opt.pipeline import optimize
from repro.runtime.compiler import compile_program
from repro.runtime.machine import Machine
from repro.workloads.registry import get_workload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_interp.json"

BENCH_WORKLOADS = ("G721_encode", "G721_decode", "GNUGO")
OPT_LEVELS = ("O0", "O3")


def _measure_one(workload, opt_level: str, fused: bool) -> tuple[int, float]:
    """One measured execution; returns (dynamic ops, wall seconds)."""
    program = analyze(parse_program(workload.source))
    optimize(program, opt_level)
    machine = Machine(opt_level, fuse=fused)
    machine.set_inputs(workload.default_inputs())
    compiled = compile_program(program, machine)
    start = time.perf_counter()
    compiled.run("main")
    elapsed = time.perf_counter() - start
    return sum(machine.counters), elapsed


def run_benchmark() -> dict:
    per_workload: dict[str, dict] = {}
    totals = {True: [0, 0.0], False: [0, 0.0]}  # fused -> [ops, seconds]
    for name in BENCH_WORKLOADS:
        workload = get_workload(name)
        entry: dict[str, float] = {}
        for opt_level in OPT_LEVELS:
            for fused in (False, True):
                ops, seconds = _measure_one(workload, opt_level, fused)
                totals[fused][0] += ops
                totals[fused][1] += seconds
                label = "fused" if fused else "unfused"
                entry[f"{opt_level}_{label}_ops_per_sec"] = round(ops / seconds)
        per_workload[name] = entry
    fused_ops, fused_seconds = totals[True]
    unfused_ops, unfused_seconds = totals[False]
    assert fused_ops == unfused_ops, "fusion changed the dynamic op count"
    return {
        "fused": True,
        "ops_per_sec": round(fused_ops / fused_seconds),
        "suite_seconds": round(fused_seconds, 3),
        "unfused_ops_per_sec": round(unfused_ops / unfused_seconds),
        "unfused_suite_seconds": round(unfused_seconds, 3),
        "speedup": round(unfused_seconds / fused_seconds, 2),
        "workloads": list(BENCH_WORKLOADS),
        "opt_levels": list(OPT_LEVELS),
        "per_workload": per_workload,
    }


def write_result(result: dict, path: pathlib.Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(result, indent=1, sort_keys=True) + "\n")


def test_bench_interp():
    result = run_benchmark()
    write_result(result)
    assert result["ops_per_sec"] >= 2 * result["unfused_ops_per_sec"], result


if __name__ == "__main__":
    bench = run_benchmark()
    write_result(bench)
    print(json.dumps(bench, indent=1, sort_keys=True))
