"""Regenerates Table 9: energy saving with O3."""

from conftest import save_and_print

from repro.experiments import render_energy, table8, table9
from repro.workloads import PRIMARY_WORKLOADS


def test_table9(benchmark, runner, results_dir):
    rows = benchmark.pedantic(
        lambda: table9(runner, PRIMARY_WORKLOADS), rounds=1, iterations=1
    )
    save_and_print(results_dir, "table9", render_energy(rows, "O3", 9))

    rows0 = table8(runner, PRIMARY_WORKLOADS)
    by_o0 = {r.program: r for r in rows0}
    by_o3 = {r.program: r for r in rows}

    for row in rows:
        assert 0.0 < row.saving < 1.0, row.program
        # absolute energies drop at O3 (faster baseline = less energy)
        assert row.original_j < by_o0[row.program].original_j, row.program

    # savings generally shrink with the faster baseline (paper: e.g.
    # G721_encode 35.6% -> 22.4%); allow small per-program noise
    shrunk = sum(
        1
        for name in by_o3
        if by_o3[name].saving <= by_o0[name].saving + 0.05
    )
    assert shrunk >= len(rows) - 1

    assert by_o3["UNEPIC"].saving == max(r.saving for r in rows)
    assert by_o3["MPEG2_encode"].saving == min(r.saving for r in rows)
