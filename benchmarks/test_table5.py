"""Regenerates Table 5: hit ratios with 1/4/16/64-entry LRU buffers.

This is the paper's comparison against the small hardware reuse buffers
of prior proposals: for most programs tiny buffers catch almost nothing,
so a flexible software table is required."""

from conftest import save_and_print

from repro.experiments import render_table5, table5
from repro.workloads import PRIMARY_WORKLOADS


def test_table5(benchmark, runner, results_dir):
    rows = benchmark.pedantic(
        lambda: table5(runner, PRIMARY_WORKLOADS), rounds=1, iterations=1
    )
    save_and_print(results_dir, "table5", render_table5(rows))

    by_name = {r.program: r for r in rows}

    # hit ratio is monotone in buffer size (LRU inclusion property)
    for row in rows:
        ratios = [row.hit_ratios[s] for s in (1, 4, 16, 64)]
        assert ratios == sorted(ratios), row.program

    # MPEG2_decode hits substantially even with ONE entry (runs of
    # identical flat blocks) — the standout row of the paper's table
    assert by_name["MPEG2_decode"].hit_ratios[1] > 0.15
    assert by_name["MPEG2_decode"].hit_ratios[1] == max(
        r.hit_ratios[1] for r in rows
    )

    # RASTA reaches (nearly) its full reuse rate at 64 entries: all 31
    # distinct patterns fit
    assert by_name["RASTA"].hit_ratios[64] > 0.95
    assert by_name["RASTA"].hit_ratios[4] < 0.35

    # G721 / UNEPIC / GNUGO: negligible with the smallest buffers
    for name in ("G721_encode", "G721_decode", "UNEPIC", "GNUGO"):
        assert by_name[name].hit_ratios[1] < 0.05, name
    for name in ("UNEPIC", "GNUGO"):
        assert by_name[name].hit_ratios[64] < 0.25, name
