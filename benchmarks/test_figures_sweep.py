"""Regenerates Figures 14/15: speedups with different hash table sizes,
under O0 and O3.

"Almost all these programs achieve good speedups by applying computation
reuse with a hash table of 512KB" — and small tables cost speedup through
collision-driven replacement."""

from conftest import save_and_print

from repro.experiments import figure14, figure15, render_sweep
from repro.workloads import PRIMARY_WORKLOADS

SIZES = (1024, 8192, 65536, 262144, None)  # bytes per table; None = optimal


def _check(series):
    by_name = {s.program: dict(s.points) for s in series}
    for line in series:
        speedups = [v for _, v in line.points]
        # the optimal-size point is (close to) the best of the sweep
        assert speedups[-1] >= max(speedups) - 0.05, line.program
        # no configuration loses more than a sliver (commit overhead only)
        assert min(speedups) > 0.85, line.program
    # small tables hurt the large-DIP workloads (G721/UNEPIC) noticeably
    for name in ("G721_encode", "UNEPIC"):
        assert by_name[name][1024] < by_name[name][None] - 0.1, name
    # RASTA's 31 patterns fit anywhere: flat curve
    rasta = [v for _, v in next(s for s in series if s.program == "RASTA").points]
    assert max(rasta) - min(rasta) < 0.1
    return by_name


def test_figure14_sweep_o0(benchmark, runner, results_dir):
    series = benchmark.pedantic(
        lambda: figure14(runner, PRIMARY_WORKLOADS, SIZES), rounds=1, iterations=1
    )
    save_and_print(results_dir, "figure14", render_sweep(series, "O0", 14))
    _check(series)


def test_figure15_sweep_o3(benchmark, runner, results_dir):
    series = benchmark.pedantic(
        lambda: figure15(runner, PRIMARY_WORKLOADS, SIZES), rounds=1, iterations=1
    )
    save_and_print(results_dir, "figure15", render_sweep(series, "O3", 15))
    _check(series)
