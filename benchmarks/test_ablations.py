"""Ablation benchmarks for the design choices DESIGN.md calls out:

* nesting-graph selection (formula 4) vs transforming every profitable
  segment;
* specialization on/off (the G721 quan story);
* table merging on/off under the memory budget (the GNU Go story);
* the R > O/C cost filter vs transforming everything profiled.
"""

import copy

from conftest import save_and_print

from repro.minic.parser import parse_program
from repro.minic.sema import analyze
from repro.opt.pipeline import optimize
from repro.reuse import PipelineConfig, ReusePipeline
from repro.runtime import Machine, compile_program
from repro.workloads import get_workload


def measure(workload, config, opt_level="O0", inputs=None):
    """Run the pipeline under `config` and measure original vs transformed.
    Returns (speedup, pipeline_result)."""
    inputs = inputs if inputs is not None else workload.default_inputs()
    result = ReusePipeline(workload.source, config).run(inputs)

    original = analyze(parse_program(workload.source))
    optimize(original, opt_level)
    mo = Machine(opt_level)
    mo.set_inputs(list(inputs))
    compile_program(original, mo).run("main")

    transformed = copy.deepcopy(result.program)
    analyze(transformed)
    optimize(transformed, opt_level)
    mt = Machine(opt_level)
    mt.set_inputs(list(inputs))
    for seg_id, table in result.build_tables().items():
        mt.install_table(seg_id, table)
    compile_program(transformed, mt).run("main")

    assert mo.output_checksum == mt.output_checksum, workload.name
    return mo.cycles / mt.cycles, result


def _config(workload, **overrides):
    base = dict(
        min_executions=workload.min_executions,
        memory_budget_bytes=workload.memory_budget_bytes,
    )
    base.update(overrides)
    return PipelineConfig(**base)


def test_ablation_specialization(benchmark, results_dir):
    """Without specialization, quan keeps its 3-input signature, fails
    the O/C pre-filter, and G721 loses most of its gain."""
    workload = get_workload("G721_encode")

    def run():
        with_spec, res_on = measure(workload, _config(workload))
        without_spec, res_off = measure(
            workload, _config(workload, enable_specialization=False)
        )
        return with_spec, without_spec, res_on, res_off

    with_spec, without_spec, res_on, res_off = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    text = (
        "Ablation: code specialization (G721_encode, O0)\n"
        f"  with specialization:    speedup {with_spec:.2f} "
        f"(transformed {len(res_on.selected)} segments)\n"
        f"  without specialization: speedup {without_spec:.2f} "
        f"(transformed {len(res_off.selected)} segments)"
    )
    save_and_print(results_dir, "ablation_specialization", text)
    assert res_on.specializations  # quan got specialized
    assert with_spec > without_spec + 0.1
    # the specialized quan is what gets memoized
    assert any("quan" in s.func_name for s in res_on.selected)


_NESTED_SOURCE = """
int lut[8] = {2, 7, 1, 8, 2, 8, 1, 8};

static int inner(int x) {
    int r = 0;
    int i;
    for (i = 0; i < 10; i++)
        r += lut[i & 7] * ((x + i) & 63);
    return r;
}

static int outer(int y) {
    int s = 0;
    int k;
    for (k = 0; k < 3; k++)
        s += inner((y + k) & 31);
    return s;
}

int main(void) {
    int acc = 0;
    while (__input_avail())
        acc += outer(__input_int());
    __output_int(acc);
    return acc;
}
"""


def test_ablation_nesting(benchmark, results_dir):
    """Both `outer` and `inner` are profitable and nest; the formula-4
    selection transforms only one of them, while the ablated pipeline
    transforms both and pays stacked probe overhead."""
    from repro.workloads.base import Workload

    workload = Workload(
        name="NESTED",
        source=_NESTED_SOURCE,
        default_inputs=lambda: [3, 9, 3, 17, 9, 3, 17, 9] * 120,
        alternate_inputs=lambda: [1, 2] * 100,
        alternate_label="alt",
        key_function="outer",
        description="nesting ablation fixture",
        min_executions=32,
    )

    def run():
        nested, res_sel = measure(workload, _config(workload))
        flat, res_all = measure(
            workload, _config(workload, enable_nesting_selection=False)
        )
        return nested, flat, res_sel, res_all

    nested, flat, res_sel, res_all = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "Ablation: nesting-graph selection (nested outer/inner fixture, O0)\n"
        f"  formula-4 selection:      speedup {nested:.2f} "
        f"({len(res_sel.selected)} segments: "
        f"{sorted(s.func_name for s in res_sel.selected)})\n"
        f"  transform all profitable: speedup {flat:.2f} "
        f"({len(res_all.selected)} segments: "
        f"{sorted(s.func_name for s in res_all.selected)})"
    )
    save_and_print(results_dir, "ablation_nesting", text)
    # the selection keeps exactly one of the nest...
    assert len(res_sel.selected) == 1
    # ...the ablated run transforms both nested segments...
    assert len(res_all.selected) > len(res_sel.selected)
    # ...and performance is no better for it (nested probes cost)
    assert nested >= flat - 0.02


def test_ablation_merging(benchmark, results_dir):
    """GNU Go under the memory budget: with merging all eight segments'
    tables fit; without it the budget evicts segments and the speedup
    drops (the paper's out-of-memory story)."""
    workload = get_workload("GNUGO")

    def run():
        merged, res_m = measure(workload, _config(workload))
        unmerged, res_u = measure(
            workload, _config(workload, enable_merging=False)
        )
        return merged, unmerged, res_m, res_u

    merged, unmerged, res_m, res_u = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "Ablation: hash-table merging (GNUGO, 256KB table budget, O0)\n"
        f"  merged tables:   speedup {merged:.2f} "
        f"({len(res_m.selected)} segments kept, {len(res_m.dropped_for_memory)} dropped)\n"
        f"  separate tables: speedup {unmerged:.2f} "
        f"({len(res_u.selected)} segments kept, {len(res_u.dropped_for_memory)} dropped)"
    )
    save_and_print(results_dir, "ablation_merging", text)
    # merging keeps all eight segments within the budget
    assert len(res_m.selected) == 8
    assert not res_m.dropped_for_memory
    # without merging the budget forces segments out
    assert res_u.dropped_for_memory
    assert merged > unmerged


def test_ablation_cost_filter(benchmark, results_dir):
    """Disabling the R > O/C test transforms unprofitable segments too;
    performance is no better and extra tables burn memory."""
    workload = get_workload("UNEPIC")

    def run():
        filtered, res_f = measure(workload, _config(workload))
        unfiltered, res_u = measure(
            workload, _config(workload, enable_cost_filter=False)
        )
        return filtered, unfiltered, res_f, res_u

    filtered, unfiltered, res_f, res_u = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    text = (
        "Ablation: cost-benefit filter (UNEPIC, O0)\n"
        f"  with R > O/C filter: speedup {filtered:.2f} "
        f"({len(res_f.selected)} segments)\n"
        f"  without filter:      speedup {unfiltered:.2f} "
        f"({len(res_u.selected)} segments)"
    )
    save_and_print(results_dir, "ablation_cost_filter", text)
    assert filtered >= unfiltered - 0.02
