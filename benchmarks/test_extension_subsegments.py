"""Benchmark for the sub-segment extension (paper §5 future work).

An UNEPIC-style program whose kernel is written *inline* in the I/O loop
(instead of in a helper function) gets nothing from the published scheme
— the loop body performs I/O, so the whole-body candidate is rejected,
and only the fine-grained inner loop qualifies.  The extension finds the
most cost-effective clean sub-range of the body and recovers the gain.
"""

from conftest import save_and_print

from test_ablations import measure  # reuse the ablation helper

from repro.reuse import PipelineConfig
from repro.workloads.base import Workload
from repro.workloads.inputs import unepic_coeffs

_INLINE_SOURCE = """
int main(void) {
    int checksum = 0;
    int smooth = 0;
    while (__input_avail()) {
        int v = __input_int();
        int mag = (v > 0) ? v : -v;
        int r = 0;
        int k;
        for (k = 0; k < 20; k++) {
            r += ((mag + k) * (mag + 13)) >> (k & 7);
            r += (mag * 21) / (k + 1);
        }
        r = r & 65535;
        if (v < 0)
            r = -r;
        smooth = (smooth * 7 + r) >> 3;
        checksum += r + (smooth & 255);
        __output_int(checksum & 65535);
    }
    __output_int(checksum);
    return checksum;
}
"""

WORKLOAD = Workload(
    name="UNEPIC_inline",
    source=_INLINE_SOURCE,
    default_inputs=lambda: unepic_coeffs(n=6000),
    alternate_inputs=lambda: unepic_coeffs(seed=5, n=6000),
    alternate_label="alt",
    key_function="main",
    description="UNEPIC with the kernel inlined into the I/O loop",
    min_executions=32,
)


def test_extension_subsegments(benchmark, results_dir):
    def run():
        base_cfg = PipelineConfig(min_executions=32)
        ext_cfg = PipelineConfig(min_executions=32, enable_subsegments=True)
        base, res_base = measure(WORKLOAD, base_cfg)
        extended, res_ext = measure(WORKLOAD, ext_cfg)
        return base, extended, res_base, res_ext

    base, extended, res_base, res_ext = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    text = (
        "Extension: sub-segment candidates (inline-kernel UNEPIC, O0)\n"
        f"  published scheme: speedup {base:.2f} "
        f"({len(res_base.selected)} segments, kinds "
        f"{sorted(s.kind for s in res_base.selected)})\n"
        f"  with sub-segments: speedup {extended:.2f} "
        f"({len(res_ext.selected)} segments, kinds "
        f"{sorted(s.kind for s in res_ext.selected)})"
    )
    save_and_print(results_dir, "extension_subsegments", text)

    # the published scheme finds no sub-block (kernel is inline, body has
    # I/O); the extension does and converts it into a real win
    assert all(s.kind != "sub-block" for s in res_base.selected)
    assert any(s.kind == "sub-block" for s in res_ext.selected)
    assert extended > base + 0.15
    assert extended > 1.5
