"""Regenerates Table 7: performance improvement with O3.

The baselines are faster (real optimizer passes + register-allocated
locals in the cost model), so reuse speedups shrink relative to Table 6 —
but remain; "our scheme is still shown to improve the performance of
these programs considerably"."""

from conftest import save_and_print

from repro.experiments import render_speedups, table6, table7
from repro.workloads import ALL_WORKLOADS


def test_table7(benchmark, runner, results_dir):
    rows, mean = benchmark.pedantic(
        lambda: table7(runner, ALL_WORKLOADS), rounds=1, iterations=1
    )
    save_and_print(results_dir, "table7", render_speedups(rows, mean, "O3", 7))

    rows0, mean0 = table6(runner, ALL_WORKLOADS)
    by_o0 = {r.program: r for r in rows0}
    by_o3 = {r.program: r for r in rows}

    for row in rows:
        # primary programs stay profitable at O3; the quan variants may
        # break even (see EXPERIMENTS.md: our selector memoizes fmult in
        # the _b variants, whose O3 granularity is marginal)
        if row.in_mean:
            assert row.speedup > 1.0, row.program
        else:
            assert row.speedup > 0.9, row.program
        # the O3 baseline itself is faster than the O0 baseline
        assert row.original_s < by_o0[row.program].original_s, row.program

    # speedups generally shrink at O3 (allow small per-program noise, but
    # the mean must drop, as in the paper's 1.46 -> 1.37)
    assert mean <= mean0 + 0.02
    shrunk = sum(
        1 for name in by_o3 if by_o3[name].speedup <= by_o0[name].speedup + 0.05
    )
    assert shrunk >= len(rows) - 2

    # ordering relations survive optimization (over the primary programs);
    # MPEG2_encode sits at (or within noise of) the bottom
    primary = [r for r in rows if r.in_mean]
    assert by_o3["UNEPIC"].speedup == max(r.speedup for r in primary)
    assert by_o3["MPEG2_encode"].speedup <= min(r.speedup for r in primary) + 0.05
