"""Benchmark for the adaptive-deactivation extension.

The paper's Table 10 shows the transformation staying profitable on
non-profiled inputs — but an input with *no* value locality would make
the static transformation a net loss.  Adaptive tables cap that downside
while leaving the profitable cases untouched.
"""


from conftest import save_and_print

from repro.minic import frontend
from repro.reuse import PipelineConfig, ReusePipeline
from repro.runtime import Machine, compile_program
from repro.workloads import get_workload


def _measure(workload, inputs, result, governed):
    mo = Machine("O0")
    mo.set_inputs(list(inputs))
    compile_program(frontend(workload.source), mo).run("main")
    mt = Machine("O0")
    mt.set_inputs(list(inputs))
    for seg_id, table in result.build_tables(governed=governed).items():
        mt.install_table(seg_id, table)
    compile_program(result.program, mt).run("main")
    assert mo.output_checksum == mt.output_checksum
    return mo.cycles / mt.cycles


def test_extension_adaptive(benchmark, results_dir):
    workload = get_workload("UNEPIC")

    def run():
        default = workload.default_inputs()
        result = ReusePipeline(
            workload.source, PipelineConfig(min_executions=workload.min_executions)
        ).run(default)
        # adversarial: a stream with essentially no repeats
        import random

        rng = random.Random(999)
        adversarial = [rng.randrange(-(2**22), 2**22) for _ in range(6000)]

        rows = {}
        rows["default/static"] = _measure(workload, default, result, governed=False)
        rows["default/adaptive"] = _measure(workload, default, result, governed=True)
        rows["adversarial/static"] = _measure(
            workload, adversarial, result, governed=False
        )
        rows["adversarial/adaptive"] = _measure(
            workload, adversarial, result, governed=True
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "Extension: adaptive table deactivation (UNEPIC, O0)\n"
        f"  profiled input,    static tables:   speedup {rows['default/static']:.2f}\n"
        f"  profiled input,    adaptive tables: speedup {rows['default/adaptive']:.2f}\n"
        f"  adversarial input, static tables:   speedup {rows['adversarial/static']:.2f}\n"
        f"  adversarial input, adaptive tables: speedup {rows['adversarial/adaptive']:.2f}"
    )
    save_and_print(results_dir, "extension_adaptive", text)

    # adaptive leaves the profitable case intact...
    assert rows["default/adaptive"] > rows["default/static"] - 0.1
    # ...and recovers (nearly) all of the adversarial loss
    assert rows["adversarial/static"] < 1.0
    assert rows["adversarial/adaptive"] > rows["adversarial/static"]
    assert rows["adversarial/adaptive"] > 0.95
