"""Adaptive governor benchmark: static vs governed tables under drift.

Runs the :func:`repro.experiments.adaptive.adaptive_ablation` over the
drift workload set — each profiled on its stationary default stream and
executed on its distribution-shifted alternate stream with static tables
(the paper's frozen scheme) and with governor-managed tables — and
writes ``BENCH_adaptive.json`` at the repo root so the adaptive win is
tracked from PR to PR:

    {"opt": "O0",
     "workloads": {"UNEPIC_drift": {"static_cycles": ..., "governed_cycles": ...,
                                    "cycles_saved": ..., "saved_pct": ...,
                                    "transitions": {...}, "final_states": {...},
                                    "ledger_governor_verdicts": {...}}, ...}}

The assertions are the extension's contract: on every drift workload the
governed run burns strictly fewer simulated cycles than the static run,
produces bit-identical outputs, and the decision ledger carries at least
one governor transition explaining why.

Run directly (``python benchmarks/bench_adaptive.py``) or via pytest
(``pytest benchmarks/bench_adaptive.py``).
"""

from __future__ import annotations

import json
import pathlib

from repro.experiments.adaptive import adaptive_ablation

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_adaptive.json"


def run_benchmark() -> dict:
    return adaptive_ablation()


def write_result(result: dict, path: pathlib.Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(result, indent=1, sort_keys=True) + "\n")


def test_bench_adaptive():
    result = run_benchmark()
    write_result(result)
    for name, row in result["workloads"].items():
        assert row["outputs_match"], name
        assert row["governed_cycles"] < row["static_cycles"], (name, row)
        assert row["transitions"], (name, row)
        assert row["ledger_governor_verdicts"], (name, row)


if __name__ == "__main__":
    bench = run_benchmark()
    write_result(bench)
    print(json.dumps(bench, indent=1, sort_keys=True))
