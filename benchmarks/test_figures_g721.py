"""Regenerates Figures 5-8: G721 input-value histograms and
accessed-table-entry histograms (encode and decode)."""

from conftest import save_and_print

from repro.experiments import (
    figure5,
    figure6,
    figure7,
    figure8,
    render_histogram,
)


def test_figure5_encode_input_values(benchmark, runner, results_dir):
    hist = benchmark.pedantic(lambda: figure5(runner), rounds=1, iterations=1)
    save_and_print(results_dir, "figure5", render_histogram(hist))
    assert hist.total > 0
    # the difference-signal magnitudes concentrate at small values: the
    # low half of the bins carries most of the mass
    half = len(hist.bins) // 2
    low = sum(c for _, c in hist.bins[:half])
    assert low > hist.total * 0.5


def test_figure6_decode_input_values(benchmark, runner, results_dir):
    hist = benchmark.pedantic(lambda: figure6(runner), rounds=1, iterations=1)
    save_and_print(results_dir, "figure6", render_histogram(hist))
    assert hist.total > 0
    half = len(hist.bins) // 2
    low = sum(c for _, c in hist.bins[:half])
    assert low > hist.total * 0.5


def test_figure7_encode_accessed_entries(benchmark, runner, results_dir):
    hist = benchmark.pedantic(lambda: figure7(runner), rounds=1, iterations=1)
    save_and_print(results_dir, "figure7", render_histogram(hist))
    # every access maps to some table entry
    assert hist.total > 0
    # accesses spread over multiple entry bins, concentrated in the
    # low-index region (single-word keys index directly, and quan's
    # input values concentrate at small magnitudes — the paper's Fig. 7
    # shows the same skew)
    used_bins = sum(1 for _, c in hist.bins if c > 0)
    assert used_bins >= 4
    low_half = sum(c for _, c in hist.bins[: len(hist.bins) // 2])
    assert low_half > hist.total * 0.5


def test_figure8_decode_accessed_entries(benchmark, runner, results_dir):
    hist = benchmark.pedantic(lambda: figure8(runner), rounds=1, iterations=1)
    save_and_print(results_dir, "figure8", render_histogram(hist))
    assert hist.total > 0
    used_bins = sum(1 for _, c in hist.bins if c > 0)
    assert used_bins >= 4
