"""Regenerates Table 8: energy saving with O0 (simulated whole-device
energy at 5 V: base power x time + per-op energy)."""

from conftest import save_and_print

from repro.experiments import render_energy, table6, table8
from repro.workloads import PRIMARY_WORKLOADS


def test_table8(benchmark, runner, results_dir):
    rows = benchmark.pedantic(
        lambda: table8(runner, PRIMARY_WORKLOADS), rounds=1, iterations=1
    )
    save_and_print(results_dir, "table8", render_energy(rows, "O0", 8))

    by_name = {r.program: r for r in rows}

    # every primary program saves energy
    for row in rows:
        assert 0.0 < row.saving < 1.0, row.program

    # energy savings track time savings to within a few points
    speed_rows, _ = table6(runner, PRIMARY_WORKLOADS)
    time_saving = {r.program: 1 - r.transformed_s / r.original_s for r in speed_rows}
    for row in rows:
        assert abs(row.saving - time_saving[row.program]) < 0.08, row.program

    # extremes match the paper: UNEPIC saves the most, MPEG2_encode least
    assert by_name["UNEPIC"].saving == max(r.saving for r in rows)
    assert by_name["MPEG2_encode"].saving == min(r.saving for r in rows)
    assert by_name["MPEG2_encode"].saving < 0.15
    assert by_name["UNEPIC"].saving > 0.4
