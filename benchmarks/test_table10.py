"""Regenerates Table 10: performance on *different* input files.

The transformation (and table sizing) was derived by profiling the
default inputs; these runs feed the programs alternate inputs, at O3.
"Substantial performance improvement is also achieved for the other
input files."
"""

from conftest import save_and_print

from repro.experiments import render_table10, table10
from repro.workloads import PRIMARY_WORKLOADS


def test_table10(benchmark, runner, results_dir):
    rows, mean = benchmark.pedantic(
        lambda: table10(runner, PRIMARY_WORKLOADS), rounds=1, iterations=1
    )
    save_and_print(results_dir, "table10", render_table10(rows, mean))

    by_name = {r.program: r for r in rows}

    # gains persist on inputs the profiler never saw
    for row in rows:
        assert row.speedup > 1.0, row.program

    # UNEPIC's alternate image repays reuse even more than the default
    # (the paper's striking 4.25 row)
    assert by_name["UNEPIC"].speedup == max(r.speedup for r in rows)
    assert by_name["UNEPIC"].speedup > 2.0

    assert 1.1 < mean < 2.2
