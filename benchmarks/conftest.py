"""Shared fixtures for the benchmark harness.

One :class:`ExperimentRunner` is shared by the whole benchmark session:
the profiling pipelines (the expensive part) run once per workload and
every table/figure reads from the same cache — mirroring the paper's flow
of "profile once, then measure everything".

Rendered tables are also written to ``benchmarks/results/`` so a full
benchmark run leaves the paper-shaped artifacts on disk.

The runner is backed by the disk cache (``.repro_cache/`` or
``$REPRO_CACHE_DIR``): pipelines and measured runs persist across
benchmark invocations, so a warm re-run is dominated by rendering.  Set
``REPRO_NO_CACHE=1`` to force everything to recompute.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import ExperimentCache, ExperimentRunner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runner():
    if os.environ.get("REPRO_NO_CACHE"):
        return ExperimentRunner()
    return ExperimentRunner(cache=ExperimentCache())


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_and_print(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
