"""Regenerates Table 6: performance improvement with O0.

All eleven programs (seven primary + four quan variants), original vs
transformed execution time and speedup, plus the harmonic mean over the
primary programs."""

from conftest import save_and_print

from repro.experiments import render_speedups, table6
from repro.workloads import ALL_WORKLOADS


def test_table6(benchmark, runner, results_dir):
    rows, mean = benchmark.pedantic(
        lambda: table6(runner, ALL_WORKLOADS), rounds=1, iterations=1
    )
    save_and_print(results_dir, "table6", render_speedups(rows, mean, "O0", 6))

    by_name = {r.program: r for r in rows}

    # every program gains (the scheme only transforms profitable segments)
    for row in rows:
        assert row.speedup > 1.0, row.program

    # the paper's ordering relations (over the primary programs)
    primary = [r for r in rows if r.in_mean]
    assert by_name["UNEPIC"].speedup == max(r.speedup for r in primary)
    assert by_name["MPEG2_encode"].speedup == min(r.speedup for r in primary)
    assert by_name["MPEG2_encode"].speedup < 1.2
    assert by_name["MPEG2_decode"].speedup > 1.5
    assert by_name["UNEPIC"].speedup > 2.0

    # quan variants: shift/binary-search versions still gain, but the
    # binary-search one (smallest granularity) gains least among G721
    enc = ["G721_encode", "G721_encode_s", "G721_encode_b"]
    assert by_name["G721_encode_b"].speedup == min(by_name[n].speedup for n in enc)
    dec = ["G721_decode", "G721_decode_s", "G721_decode_b"]
    assert by_name["G721_decode_b"].speedup == min(by_name[n].speedup for n in dec)

    # several programs exceed 1.5x; the harmonic mean lands near the
    # paper's 1.46
    assert sum(1 for r in rows if r.in_mean and r.speedup > 1.5) >= 3
    assert 1.2 < mean < 2.1
