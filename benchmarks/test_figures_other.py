"""Regenerates Figures 11-13: RASTA distinct-pattern accesses, UNEPIC
input values, GNU Go input patterns."""

from conftest import save_and_print

from repro.experiments import figure11, figure12, figure13, render_histogram


def test_figure11_rasta_patterns(benchmark, runner, results_dir):
    hist = benchmark.pedantic(lambda: figure11(runner), rounds=1, iterations=1)
    save_and_print(results_dir, "figure11", render_histogram(hist))
    # exactly the 31 distinct patterns of the paper
    assert len(hist.bins) == 31
    # every pattern is accessed many times (reuse rate 99%+)
    assert all(count > 10 for _, count in hist.bins)


def test_figure12_unepic_values(benchmark, runner, results_dir):
    hist = benchmark.pedantic(lambda: figure12(runner), rounds=1, iterations=1)
    save_and_print(results_dir, "figure12", render_histogram(hist))
    assert hist.total > 0
    # Laplacian: the middle bins (around zero) dominate
    n = len(hist.bins)
    middle = sum(c for _, c in hist.bins[n // 3 : 2 * n // 3])
    assert middle > hist.total * 0.5


def test_figure13_gnugo_patterns(benchmark, runner, results_dir):
    hist = benchmark.pedantic(lambda: figure13(runner), rounds=1, iterations=1)
    save_and_print(results_dir, "figure13", render_histogram(hist))
    # 4-value patterns, heavily reused
    assert hist.bins
    first_key = hist.bins[0][0]
    assert first_key.count(",") == 3  # four components
    assert hist.bins[0][1] > 5
