"""Cycle-attribution profiler overhead benchmark.

Measures the wall-clock cost of running a workload with the
:class:`~repro.obs.profiler.CycleProfiler` installed versus without, at
O0 and O3 with reuse tables live, and writes ``BENCH_profiler.json`` at
the repo root:

    {"per_workload": {"UNEPIC": {"O0_overhead_pct": ..., ...}, ...},
     "max_overhead_pct": ...}

Two invariants ride along: a *disabled* profiler (the default) costs
nothing because the hooks are compiled in only when one is installed,
so the unprofiled run must execute byte-identical closures; and the
profiled run must report bit-identical simulated cycles (the profiler
observes the cost model, never perturbs it).

Run directly (``python benchmarks/bench_profiler.py``) or via pytest
(``pytest benchmarks/bench_profiler.py``).
"""

from __future__ import annotations

import json
import pathlib
import time

from repro import api
from repro.experiments.adaptive import workload_config
from repro.workloads.registry import get_workload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_profiler.json"

BENCH_WORKLOADS = ("UNEPIC", "GNUGO")
OPT_LEVELS = ("O0", "O3")


def _measure_one(name: str, opt_level: str, profiled: bool) -> tuple[int, float]:
    """One measured run; returns (simulated cycles, wall seconds)."""
    workload = get_workload(name)
    program = api.compile(
        workload.source,
        api.CompileOptions(
            opt=opt_level, config=workload_config(workload), profile=profiled
        ),
    )
    inputs = workload.default_inputs()
    program.profile(inputs)
    start = time.perf_counter()
    result = program.run(inputs)
    elapsed = time.perf_counter() - start
    if profiled:
        assert result.profile().total_cycles == result.metrics.cycles
    return result.metrics.cycles, elapsed


def run_benchmark() -> dict:
    per_workload: dict[str, dict] = {}
    worst = 0.0
    for name in BENCH_WORKLOADS:
        entry: dict[str, float] = {}
        for opt_level in OPT_LEVELS:
            plain_cycles, plain_s = _measure_one(name, opt_level, profiled=False)
            prof_cycles, prof_s = _measure_one(name, opt_level, profiled=True)
            assert prof_cycles == plain_cycles, (
                "the profiler perturbed the simulated machine"
            )
            overhead_pct = (prof_s / plain_s - 1.0) * 100.0
            worst = max(worst, overhead_pct)
            entry[f"{opt_level}_plain_seconds"] = round(plain_s, 4)
            entry[f"{opt_level}_profiled_seconds"] = round(prof_s, 4)
            entry[f"{opt_level}_overhead_pct"] = round(overhead_pct, 1)
        per_workload[name] = entry
    return {
        "workloads": list(BENCH_WORKLOADS),
        "opt_levels": list(OPT_LEVELS),
        "per_workload": per_workload,
        "max_overhead_pct": round(worst, 1),
    }


def write_result(result: dict, path: pathlib.Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(result, indent=1, sort_keys=True) + "\n")


def test_bench_profiler():
    result = run_benchmark()
    write_result(result)
    # profiling slows wall clock but must never change simulated cycles
    # (asserted per-run above); the wall overhead itself is unbounded on
    # shared CI machines, so only report it
    assert result["max_overhead_pct"] == result["max_overhead_pct"]  # not NaN


if __name__ == "__main__":
    bench = run_benchmark()
    write_result(bench)
    print(json.dumps(bench, indent=1, sort_keys=True))
